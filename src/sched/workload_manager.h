// Workload manager: per-atom workload queues and contention metrics.
//
// Implements the data-driven core of LifeRaft/JAWS (paper Secs. III-C, V):
//   * a workload queue per atom holding the pending sub-queries against it;
//   * the workload-throughput metric (Eq. 1)
//         U_t(i) = W_i / (T_b * phi(i) + T_m * W_i)
//     where W_i is the total pending positions, T_b/T_m the I/O/compute cost
//     constants and phi(i) = 0 when the atom is cached;
//   * the aged metric (Eq. 2)  U_e(i) = U_t(i)*(1-alpha) + E(i)*alpha, with
//     E(i) the age of the oldest sub-query. Because E(i) = now - oldest_i,
//     atoms can be ranked by the *static* key U_t*(1-alpha) - oldest_i*alpha
//     (the common now*alpha term cancels), so the ordered index only changes
//     when a queue mutates, the cache residency flips, or alpha changes;
//   * the two-level selection (Sec. V, Fig. 6): pick the time step with the
//     highest mean U_t, then up to k atoms of that step with U_t above the
//     mean, returned in Morton order;
//   * the UtilityOracle interface URC reads for cache coordination.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/replacement_policy.h"
#include "sched/subquery.h"
#include "storage/atom.h"
#include "util/sim_time.h"

namespace jaws::sched {

/// The cost constants of Eq. 1, in the units used throughout (milliseconds of
/// virtual time; W in positions).
struct CostConstants {
    double t_b_ms = 25.0;  ///< Estimated cost of reading one atom from disk.
    double t_m_ms = 0.005; ///< Estimated compute cost per position (5 us).
    std::uint64_t atoms_per_step = 4096;  ///< Denominator of per-step means.
};

/// Residency probe for phi(i); decouples the manager from the cache class.
class ResidencyProbe {
  public:
    virtual ~ResidencyProbe() = default;
    /// True when `atom` is in memory (phi = 0).
    virtual bool resident(const storage::AtomId& atom) const = 0;
};

/// Per-atom workload queues with contention-ordered indexes.
class WorkloadManager final : public cache::UtilityOracle {
  public:
    /// `probe` may be null (phi taken as 1 everywhere) and must outlive the
    /// manager otherwise. `cost.atoms_per_step` is the denominator of the
    /// paper's "mean over all atoms in a time step" (4096 in production): the
    /// coarse level ranks steps by total pending contention normalised by
    /// this constant, so steps with more aggregate work win, and the in-step
    /// selection bar ("U_t greater than the mean") is correspondingly low.
    WorkloadManager(const CostConstants& cost, const ResidencyProbe* probe,
                    double alpha = 0.5);

    // --- queue mutation ---

    /// Append a sub-query to its atom's workload queue.
    void enqueue(const SubQuery& sub);

    /// Remove and return the whole workload queue of `atom` (the single pass
    /// over the atom's data evaluates all of it). Empty result if none.
    std::vector<SubQuery> drain_atom(const storage::AtomId& atom);

    /// Notify that `atom`'s cache residency changed (phi flips, U_t changes).
    void on_residency_changed(const storage::AtomId& atom);

    // --- selection ---

    /// Atom with the highest aged workload throughput U_e at virtual time
    /// `now` (LifeRaft's single-atom pick). nullopt when no work is pending.
    std::optional<storage::AtomId> pick_best_atom() const;

    /// Two-level pick (paper Sec. V, Fig. 6): the time step with the highest
    /// mean *aged* workload throughput over all of the step's atoms
    /// (Sec. V-C), then up to `k` atoms of that step with U_t at or above the
    /// step's mean U_t, in Morton order. `now` enters through the age term
    /// E(i) = now - oldest_i of the aged metric.
    std::vector<storage::AtomId> pick_two_level_batch(std::size_t k, util::SimTime now) const;

    /// QoS support (paper Sec. VII): the atom whose pending work carries the
    /// earliest completion deadline, with that deadline. nullopt when no
    /// pending sub-query has a deadline.
    std::optional<std::pair<storage::AtomId, util::SimTime>> earliest_deadline_atom() const;

    // --- metrics / oracle ---

    /// U_t(atom) (Eq. 1); 0 when no work is pending against it.
    double atom_utility(const storage::AtomId& atom) const override;
    /// Mean U_t over the pending atoms of step `t`; 0 if none.
    double timestep_mean_utility(std::uint32_t t) const override;

    // --- alpha ---

    /// Current age bias.
    double alpha() const noexcept { return alpha_; }
    /// Change the age bias (rebuilds the ordered index).
    void set_alpha(double alpha);

    // --- introspection ---

    bool empty() const noexcept { return queues_.empty(); }

    /// Exhaustive consistency check between the atom queues and the derived
    /// indexes (automatic at transitions in audit builds; callable from
    /// tests): per-queue position/deadline caches, global totals, the
    /// ordered ranking, per-step aggregates, and the deadline index must all
    /// re-derive from the queues exactly. Reports through
    /// util::contract_violation; returns true when clean.
    bool audit() const;
    /// The cost constants in effect (schedulers derive service estimates).
    const CostConstants& cost() const noexcept { return cost_; }
    std::size_t pending_atoms() const noexcept { return queues_.size(); }
    std::uint64_t pending_positions() const noexcept { return total_positions_; }
    std::size_t pending_subqueries() const noexcept { return total_subqueries_; }

  private:
    struct AtomQueue {
        std::vector<SubQuery> items;
        std::uint64_t positions = 0;
        util::SimTime oldest;
        /// Earliest QoS deadline queued (SimTime::max() = none).
        util::SimTime min_deadline = util::SimTime::max();
        double utility = 0.0;  ///< Cached U_t.
        double key = 0.0;      ///< Cached static ranking key.
    };

    double compute_utility(const storage::AtomId& atom, const AtomQueue& q) const;
    double compute_key(const AtomQueue& q) const;
    void index_insert(const storage::AtomId& atom, AtomQueue& q);
    void index_erase(const storage::AtomId& atom, const AtomQueue& q);
    void rebuild_index();

    CostConstants cost_;
    const ResidencyProbe* probe_;
    double alpha_;

    std::unordered_map<storage::AtomId, AtomQueue, storage::AtomIdHash> queues_;
    // Ordered by descending static key; (-key, atom key) ascending.
    std::set<std::pair<double, storage::AtomKey>> order_;
    struct StepAgg {
        double utility_sum = 0.0;  ///< Sum of U_t (mean gates in-step selection).
        double key_sum = 0.0;      ///< Sum of static aged keys (mean picks the step).
        std::size_t atoms = 0;
        // Ordered by descending U_t; (-U_t, atom key) ascending.
        std::set<std::pair<double, storage::AtomKey>> by_utility;
    };
    std::map<std::uint32_t, StepAgg> steps_;
    // Atoms with deadlined work, ordered by (deadline, atom key).
    std::set<std::pair<util::SimTime, storage::AtomKey>> deadlines_;
    std::uint64_t total_positions_ = 0;
    std::size_t total_subqueries_ = 0;
    std::uint64_t audit_tick_ = 0;  ///< Rate limiter for automatic audits.
};

}  // namespace jaws::sched
