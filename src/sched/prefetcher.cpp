#include "sched/prefetcher.h"

#include <algorithm>
#include <cmath>

#include "util/morton.h"

namespace jaws::sched {

namespace {

/// Shortest signed displacement from a to b on a periodic axis of length n.
double torus_delta(double a, double b, double n) {
    double d = b - a;
    if (d > n / 2) d -= n;
    if (d < -n / 2) d += n;
    return d;
}

}  // namespace

void TrajectoryPrefetcher::observe(workload::JobId job, std::uint32_t seq,
                                   std::uint32_t timestep,
                                   const std::vector<workload::AtomRequest>& footprint) {
    if (footprint.empty()) return;
    Trajectory& t = trajectories_[job];

    // Footprint centroid in atom coordinates.
    double cx = 0.0, cy = 0.0, cz = 0.0;
    std::vector<std::uint64_t> mortons;
    mortons.reserve(footprint.size());
    for (const auto& req : footprint) {
        const util::Coord3 c = util::morton_decode(req.atom.morton);
        cx += c.x;
        cy += c.y;
        cz += c.z;
        mortons.push_back(req.atom.morton);
    }
    const auto n = static_cast<double>(footprint.size());
    cx /= n;
    cy /= n;
    cz /= n;

    if (t.primed && seq == t.last_seq + 1) {
        const double aps = static_cast<double>(atoms_per_side_);
        t.vx = torus_delta(t.cx, cx, aps);
        t.vy = torus_delta(t.cy, cy, aps);
        t.vz = torus_delta(t.cz, cz, aps);
        t.step_delta = static_cast<std::int32_t>(timestep) -
                       static_cast<std::int32_t>(t.last_step);
        t.have_velocity = true;
    } else {
        t.have_velocity = false;
    }
    t.primed = true;
    t.last_seq = seq;
    t.last_step = timestep;
    t.cx = cx;
    t.cy = cy;
    t.cz = cz;
    t.last_mortons = std::move(mortons);
}

void TrajectoryPrefetcher::forget(workload::JobId job) { trajectories_.erase(job); }

std::vector<storage::AtomId> TrajectoryPrefetcher::predict(workload::JobId job) {
    const auto it = trajectories_.find(job);
    if (it == trajectories_.end()) return {};
    const Trajectory& t = it->second;
    if (!t.have_velocity || t.last_seq + 1 < config_.min_history) return {};

    // Erratic jobs (footprint jumps bigger than the cap) are not predictable.
    const double jump = std::sqrt(t.vx * t.vx + t.vy * t.vy + t.vz * t.vz) /
                        static_cast<double>(atoms_per_side_);
    if (jump > config_.max_centroid_jump) return {};

    const std::int64_t next_step =
        static_cast<std::int64_t>(t.last_step) + t.step_delta;
    if (next_step < 0) return {};

    // Translate the last footprint by the observed displacement (rounded to
    // atoms) at the predicted time step.
    const auto round_delta = [](double v) {
        return static_cast<std::int64_t>(std::llround(v));
    };
    const std::int64_t dx = round_delta(t.vx);
    const std::int64_t dy = round_delta(t.vy);
    const std::int64_t dz = round_delta(t.vz);

    std::vector<storage::AtomId> out;
    out.reserve(t.last_mortons.size());
    const auto wrap = [&](std::int64_t c) {
        const auto m = static_cast<std::int64_t>(atoms_per_side_);
        return static_cast<std::uint32_t>(((c % m) + m) % m);
    };
    for (const std::uint64_t code : t.last_mortons) {
        const util::Coord3 c = util::morton_decode(code);
        const std::uint64_t predicted =
            util::morton_encode(wrap(static_cast<std::int64_t>(c.x) + dx),
                                wrap(static_cast<std::int64_t>(c.y) + dy),
                                wrap(static_cast<std::int64_t>(c.z) + dz));
        out.push_back(storage::AtomId{static_cast<std::uint32_t>(next_step), predicted});
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    stats_.predictions += out.size();
    return out;
}

void TrajectoryPrefetcher::on_prefetched(const storage::AtomId& atom) {
    ++stats_.prefetches;
    outstanding_[atom] = false;  // not yet touched by demand
}

void TrajectoryPrefetcher::on_aborted(const storage::AtomId& atom) {
    (void)atom;  // nothing entered outstanding_: the read never completed
    ++stats_.aborted;
}

void TrajectoryPrefetcher::on_demand_access(const storage::AtomId& atom) {
    const auto it = outstanding_.find(atom);
    if (it == outstanding_.end() || it->second) return;
    it->second = true;
    ++stats_.hits;
}

void TrajectoryPrefetcher::on_evicted(const storage::AtomId& atom) {
    const auto it = outstanding_.find(atom);
    if (it == outstanding_.end()) return;
    if (!it->second) ++stats_.wasted;
    outstanding_.erase(it);
}

}  // namespace jaws::sched
