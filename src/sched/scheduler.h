// Scheduler interface.
//
// The engine (core module) drives a scheduler through notifications — job
// submitted, query visible (its inputs exist), query completed — and asks it
// for the next batch of atoms to process. Each returned batch item is one
// atom together with the *entire* workload queue drained from it, which the
// engine evaluates in a single pass over the atom's data. The four paper
// systems (NoShare, LifeRaft, JAWS_1, JAWS_2) implement this interface.
#pragma once

#include <string>
#include <vector>

#include "cache/buffer_cache.h"
#include "sched/precedence_graph.h"
#include "sched/qos.h"
#include "sched/subquery.h"
#include "sched/workload_manager.h"
#include "workload/job.h"

namespace jaws::sched {

/// One atom scheduled for processing with its drained sub-queries.
struct BatchItem {
    storage::AtomId atom;
    std::vector<SubQuery> subqueries;
};

/// Scheduling policy driven by the engine.
class Scheduler {
  public:
    virtual ~Scheduler() = default;

    /// Policy name for reports ("NoShare", "LifeRaft", "JAWS", ...).
    virtual std::string name() const = 0;

    /// A job's declared workflow was submitted (called before any of its
    /// queries become visible). Default: ignore (only JAWS_2 is job-aware).
    virtual void on_job_submitted(const workload::Job& job) { (void)job; }

    /// `query`'s inputs now exist and it may be scheduled (subject to the
    /// scheduler's own gating). The reference stays valid until completion.
    virtual void on_query_visible(const workload::Query& query, util::SimTime now) = 0;

    /// All of `query`'s sub-queries finished at `now` with the given
    /// response time (completion - visible).
    virtual void on_query_completed(workload::QueryId query, util::SimTime response,
                                    util::SimTime now) {
        (void)query;
        (void)response;
        (void)now;
    }

    /// An atom entered or left the buffer cache (phi(i) flipped).
    virtual void on_residency_changed(const storage::AtomId& atom) { (void)atom; }

    /// `atom` became permanently unreadable (bad range / retries exhausted):
    /// remove and return any sub-queries still queued against it so the
    /// engine can fail them instead of re-dispatching a dead atom forever.
    /// Default: nothing queued per atom, nothing to purge.
    virtual std::vector<SubQuery> purge_atom(const storage::AtomId& atom) {
        (void)atom;
        return {};
    }

    /// Next batch of atoms to evaluate, in execution order; empty when no
    /// work is currently schedulable.
    virtual std::vector<BatchItem> next_batch(util::SimTime now) = 0;

    /// Whether any sub-query is currently schedulable.
    virtual bool has_pending() const = 0;

    /// Number of schedulable sub-queries (backlog depth, for telemetry).
    virtual std::size_t pending_count() const = 0;

    /// Escape hatch when the engine would stall with visible-but-gated
    /// queries only: release at least one. Returns true if anything was
    /// released. Default: no gating, nothing to do.
    virtual bool unstick(util::SimTime now) {
        (void)now;
        return false;
    }

    /// Current age bias (for reports); NaN-free default for ungated policies.
    virtual double current_alpha() const { return 0.0; }

    /// Gating statistics, when the policy is job-aware; null otherwise.
    virtual const GatingStats* gating_stats() const { return nullptr; }

    /// QoS statistics, when the policy issues completion guarantees.
    virtual const QosStats* qos_stats() const { return nullptr; }
};

/// Adapter exposing BufferCache residency as the WorkloadManager's phi probe.
class CacheResidencyProbe final : public ResidencyProbe {
  public:
    explicit CacheResidencyProbe(const cache::BufferCache& cache) : cache_(cache) {}
    bool resident(const storage::AtomId& atom) const override {
        return cache_.contains(atom);
    }

  private:
    const cache::BufferCache& cache_;
};

}  // namespace jaws::sched
