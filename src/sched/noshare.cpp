#include "sched/noshare.h"

namespace jaws::sched {

void NoShareScheduler::on_query_visible(const workload::Query& query, util::SimTime now) {
    fifo_.push_back(preprocess(query, now));
}

std::vector<BatchItem> NoShareScheduler::next_batch(util::SimTime now) {
    (void)now;
    std::vector<BatchItem> batch;
    if (fifo_.empty()) return batch;
    const std::vector<SubQuery> next = std::move(fifo_.front());
    fifo_.pop_front();
    batch.reserve(next.size());
    for (const SubQuery& sub : next) batch.push_back(BatchItem{sub.atom, {sub}});
    return batch;
}

}  // namespace jaws::sched
