#include "sched/noshare.h"

namespace jaws::sched {

void NoShareScheduler::on_query_visible(const workload::Query& query, util::SimTime now) {
    fifo_.push_back(Pending{&query, now});
}

std::vector<BatchItem> NoShareScheduler::next_batch(util::SimTime now) {
    (void)now;
    std::vector<BatchItem> batch;
    if (fifo_.empty()) return batch;
    const Pending next = fifo_.front();
    fifo_.pop_front();
    batch.reserve(next.query->footprint.size());
    for (const SubQuery& sub : preprocess(*next.query, next.visible))
        batch.push_back(BatchItem{sub.atom, {sub}});
    return batch;
}

}  // namespace jaws::sched
