// Sub-queries: the scheduler's unit of work.
//
// The pre-processor splits every query into sub-queries — the subsets of its
// positions that fall within a single atom (paper Sec. III-B). Sub-queries of
// one query can execute in any order, and the query completes when all of
// them have; sub-queries of *different* queries that touch the same atom are
// co-scheduled in one pass over that atom's data. This header defines the
// sub-query record and the pre-processing step.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/atom.h"
#include "util/sim_time.h"
#include "workload/query.h"

namespace jaws::sched {

/// One query's positions inside one atom, together with the *support atoms*
/// its kernel of computation needs: positions near an atom boundary draw
/// interpolation samples from face-neighbour atoms (paper Sec. V — "
/// computations such as Lagrangian interpolation may require that a position
/// accesses data from multiple atoms that are nearby in space"). Executing
/// the sub-query requires every support atom to be memory-resident; the
/// engine reads absent supports without draining their own workload queues.
/// Schedulers that batch spatially adjacent atoms of one time step (the
/// two-level framework) therefore avoid redundant peripheral reads that
/// single-atom contention chasing pays repeatedly.
struct SubQuery {
    workload::QueryId query = 0;
    storage::AtomId atom;
    std::uint64_t positions = 0;
    util::SimTime enqueue_time;  ///< When it entered the workload queue (for E(i)).
    /// Completion-time guarantee of the owning query (QoS mode, paper
    /// Sec. VII); INT64_MAX when no guarantee was requested.
    util::SimTime deadline{INT64_MAX};
    std::vector<std::uint64_t> supports;  ///< Morton codes of kernel-support atoms.
};

/// Split `query` into per-atom sub-queries stamped with `now`. The query's
/// footprint is already Morton-sorted per time step, so the resulting list is
/// too — preserving the paper's Morton-order evaluation property. Each
/// sub-query's supports are the face-neighbour atoms of its atom that also
/// carry positions of this query: the kernel window of a contiguous position
/// cloud spills exactly into the adjacent occupied atoms.
std::vector<SubQuery> preprocess(const workload::Query& query, util::SimTime now);

}  // namespace jaws::sched
