// LifeRaft scheduler (paper Sec. III).
//
// Data-driven batch processing: queries are split into per-atom sub-queries,
// pooled in workload queues, and atoms are evaluated greedily in decreasing
// aged workload throughput U_e (Eq. 2) with a *fixed* age bias alpha set at
// construction. One atom is scheduled per dispatch (no two-level framework),
// and all sub-queries pending against it are evaluated in a single pass.
// alpha = 0 is the paper's contention-maximising LifeRaft_2; alpha = 1 is the
// arrival-order LifeRaft_1 (which still co-schedules queries that reference
// the same data as the oldest request).
#pragma once

#include "sched/scheduler.h"

namespace jaws::sched {

/// Single-atom contention-ordered scheduling with fixed alpha.
class LifeRaftScheduler final : public Scheduler {
  public:
    LifeRaftScheduler(const CostConstants& cost, const cache::BufferCache* cache,
                      double alpha);

    std::string name() const override;
    void on_query_visible(const workload::Query& query, util::SimTime now) override;
    void on_residency_changed(const storage::AtomId& atom) override;
    std::vector<SubQuery> purge_atom(const storage::AtomId& atom) override {
        return manager_.drain_atom(atom);
    }
    std::vector<BatchItem> next_batch(util::SimTime now) override;
    bool has_pending() const override { return !manager_.empty(); }
    std::size_t pending_count() const override { return manager_.pending_subqueries(); }
    double current_alpha() const override { return manager_.alpha(); }

    /// The underlying workload manager (URC oracle access, tests).
    WorkloadManager& manager() noexcept { return manager_; }

  private:
    std::unique_ptr<CacheResidencyProbe> probe_;
    WorkloadManager manager_;
};

}  // namespace jaws::sched
