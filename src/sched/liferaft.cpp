#include "sched/liferaft.h"

#include <cstdio>

namespace jaws::sched {

LifeRaftScheduler::LifeRaftScheduler(const CostConstants& cost,
                                     const cache::BufferCache* cache, double alpha)
    : probe_(cache != nullptr ? std::make_unique<CacheResidencyProbe>(*cache) : nullptr),
      manager_(cost, probe_.get(), alpha) {}

std::string LifeRaftScheduler::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "LifeRaft(a=%.2f)", manager_.alpha());
    return buf;
}

void LifeRaftScheduler::on_query_visible(const workload::Query& query, util::SimTime now) {
    for (const SubQuery& sub : preprocess(query, now)) manager_.enqueue(sub);
}

void LifeRaftScheduler::on_residency_changed(const storage::AtomId& atom) {
    manager_.on_residency_changed(atom);
}

std::vector<BatchItem> LifeRaftScheduler::next_batch(util::SimTime now) {
    (void)now;
    std::vector<BatchItem> batch;
    const auto best = manager_.pick_best_atom();
    if (!best) return batch;
    batch.push_back(BatchItem{*best, manager_.drain_atom(*best)});
    return batch;
}

}  // namespace jaws::sched
