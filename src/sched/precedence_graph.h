// Precedence graph with gating edges (paper Sec. IV-B, Figs. 4-5).
//
// Vertices are queries; directed precedence edges chain each ordered job's
// queries; undirected *gating edges* mark cross-job query pairs that JAWS
// wants co-scheduled because they access the same atoms. Query states follow
// the paper:
//   WAIT  - predecessor not finished (inputs don't exist yet);
//   READY - precedence satisfied, but a gating partner is not yet READY;
//   QUEUE - all constraints satisfied, sub-queries may enter workload queues;
//   DONE  - completed (and pruned from the graph).
// A READY query is promoted to QUEUE once every gating partner is at least
// READY, so gated groups enter the workload queues together and the
// contention metric naturally co-schedules their shared atoms.
//
// Gating edges are admitted per the paper's AdmitGatingEdge (Fig. 4):
// transitive inheritance of the partner's existing edges, a gating-number
// monotonicity check, at most one edge per query per job pair, no crossing
// edges between a job pair — plus an exact deadlock check (cycle detection
// over the constraint graph with gating components contracted), which makes
// the "does not cause a deadlock in scheduling" condition precise.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "workload/job.h"

namespace jaws::sched {

/// Scheduling state of one query (paper Sec. IV-B).
enum class QueryState : std::uint8_t { kWait, kReady, kQueue, kDone };

/// Counters exposed for tests, benches and reports.
struct GatingStats {
    std::size_t alignments_run = 0;        ///< Pairwise dynamic programs computed.
    std::size_t edges_admitted = 0;
    /// Edges the paper's gating-number proxy would have rejected; we admit
    /// them when the exact cycle check passes (tracked for comparison).
    std::size_t edges_rejected_gating_number = 0;
    std::size_t edges_rejected_crossing = 0;
    std::size_t edges_rejected_deadlock = 0;
    std::size_t forced_promotions = 0;     ///< Anti-stall interventions (should be 0).
};

/// The job-aware precedence/gating graph.
class PrecedenceGraph {
  public:
    /// `gating_enabled` = false degrades to pure precedence tracking (JAWS_1).
    explicit PrecedenceGraph(bool gating_enabled = true)
        : gating_enabled_(gating_enabled) {}

    /// Register a job's declared workflow. The Job must outlive the graph (the
    /// engine owns jobs in stable storage). Ordered jobs are aligned against
    /// every active ordered job, in descending alignment-score order, and
    /// feasible gating edges are admitted.
    void add_job(const workload::Job& job);
    /// Temporaries would dangle — the graph keeps a pointer to the job.
    void add_job(workload::Job&&) = delete;

    /// The query's inputs now exist (first query: job arrival; later queries:
    /// predecessor DONE + think time elapsed). Moves WAIT -> READY and runs
    /// gating promotion. Returns every query promoted to QUEUE by this event.
    std::vector<workload::QueryId> on_query_visible(workload::QueryId id);

    /// The query finished executing: QUEUE -> DONE, gating edges pruned.
    /// Returns queries promoted to QUEUE as a result (partners whose last
    /// un-READY partner was this query never exist — DONE also satisfies
    /// gating — so promotions here come from pruning).
    std::vector<workload::QueryId> on_query_done(workload::QueryId id);

    /// Anti-stall escape hatch: promote the READY query that has been visible
    /// longest, ignoring its gates. The engine calls this only when it would
    /// otherwise idle forever; with correct admission it never fires.
    std::vector<workload::QueryId> force_promote_oldest_ready();

    /// Current state of a query (kDone for unknown/pruned ids).
    QueryState state(workload::QueryId id) const;
    /// Gating number G(q): gating-edged queries in the job prefix up to and
    /// including q (paper Fig. 3's annotation). 0 for unknown ids.
    int gating_number(workload::QueryId id) const;
    /// Number of gating partners currently attached to `id`.
    std::size_t partner_count(workload::QueryId id) const;
    /// True if any query is in the READY state.
    bool has_ready() const noexcept { return ready_count_ > 0; }
    /// Counters.
    const GatingStats& stats() const noexcept { return stats_; }

    /// Exhaustive invariant check for tests: state machine consistency,
    /// symmetric partner lists, one-edge-per-job-pair, no crossing edges, and
    /// deadlock freedom of the active graph.
    bool check_invariants() const;

    /// check_invariants() reported through util::contract_violation (audit
    /// builds run it automatically after every add_job / on_query_done and
    /// promotion pass). Returns true when clean.
    bool audit() const;

  private:
    struct Node {
        workload::QueryId id = 0;
        workload::JobId job = 0;
        std::uint32_t seq = 0;
        QueryState state = QueryState::kWait;
        std::uint64_t visible_tick = 0;  ///< Order in which queries became READY.
        std::vector<workload::QueryId> partners;
        int gating_number = 0;
        const workload::Query* query = nullptr;
    };

    struct JobEntry {
        const workload::Job* job = nullptr;
        std::size_t remaining = 0;  ///< Queries not yet DONE.
    };

    Node* find(workload::QueryId id);
    const Node* find(workload::QueryId id) const;
    bool gating_satisfied(const Node& node) const;
    std::vector<workload::QueryId> promote_from(const std::vector<workload::QueryId>& seeds);
    bool try_admit_edge(Node& nl, Node& nk);
    bool would_deadlock(const Node& a, const Node& b,
                        const std::vector<workload::QueryId>& extra) const;
    void recompute_gating_numbers(workload::JobId job_id);
    bool edge_allowed_between(const Node& a, const Node& b, std::size_t* crossing,
                              std::size_t* duplicate) const;

    bool gating_enabled_;
    std::unordered_map<workload::QueryId, Node> nodes_;
    std::map<workload::JobId, JobEntry> jobs_;
    GatingStats stats_;
    std::size_t ready_count_ = 0;
    std::uint64_t tick_ = 0;
};

}  // namespace jaws::sched
