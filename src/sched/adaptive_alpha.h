// Adaptive starvation resistance (paper Sec. V-A).
//
// JAWS tunes the age bias alpha of the aged workload-throughput metric
// automatically: the workload is divided into runs of r consecutive queries,
// per-run average response time rt(i) and throughput tp(i) are measured
// (smoothed as rt' = 0.2 rt + 0.8 rt', tp' likewise), and alpha moves by the
// paper's two rules:
//   (1) saturation rising (rt ratio >= 1) and throughput not keeping up
//       (tp ratio < rt ratio): alpha -= min(rt_ratio - tp_ratio, alpha)
//       -> bias towards contention, maximise sharing;
//   (2) saturation falling (rt ratio < 1) but throughput fell even faster
//       (tp ratio < rt ratio): alpha += min(rt_ratio - tp_ratio, 1 - alpha)
//       -> spend spare capacity on response time.
// If two consecutive runs show no change, a small exploration step perturbs
// alpha so it cannot stay stuck at a bad initial value.
#pragma once

#include <cstddef>

#include "util/sim_time.h"
#include "util/stats.h"

namespace jaws::sched {

/// Controller configuration.
struct AdaptiveAlphaConfig {
    double initial_alpha = 0.5;
    std::size_t run_length = 200;     ///< Queries per run (r).
    double smoothing = 0.2;           ///< EWMA weight on the newest run.
    double stall_epsilon = 0.02;      ///< Ratios within 1 +/- eps count as "no change".
    double explore_step = 0.08;       ///< Exploration perturbation of alpha.
};

/// Per-run measurement and alpha adjustment.
class AdaptiveAlphaController {
  public:
    explicit AdaptiveAlphaController(const AdaptiveAlphaConfig& config = {});

    /// Record one completed query. Returns true when this completion closed a
    /// run (alpha may have changed; callers re-read alpha() and propagate).
    bool on_query_completed(util::SimTime response_time, util::SimTime now);

    /// Current age bias.
    double alpha() const noexcept { return alpha_; }
    /// Number of completed runs.
    std::size_t runs() const noexcept { return runs_; }
    /// Exploration steps taken (for reports).
    std::size_t explorations() const noexcept { return explorations_; }

  private:
    void close_run(util::SimTime now);

    AdaptiveAlphaConfig config_;
    double alpha_;
    util::Ewma rt_ewma_;
    util::Ewma tp_ewma_;
    double prev_rt_ = 0.0;
    double prev_tp_ = 0.0;
    bool have_prev_ = false;
    std::size_t stall_runs_ = 0;
    double explore_direction_ = 1.0;
    std::size_t explorations_ = 0;

    util::RunningStats run_rt_;
    util::SimTime run_start_;
    bool run_started_ = false;
    std::size_t runs_ = 0;
};

}  // namespace jaws::sched
