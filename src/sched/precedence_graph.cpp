#include "sched/precedence_graph.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

#include "sched/alignment.h"
#include "util/contracts.h"

namespace jaws::sched {

namespace {

/// Small disjoint-set over query ids, used to contract gating components for
/// the deadlock (cycle) check.
class Dsu {
  public:
    workload::QueryId find(workload::QueryId x) {
        auto it = parent_.find(x);
        if (it == parent_.end()) {
            parent_[x] = x;
            return x;
        }
        workload::QueryId root = x;
        while (parent_[root] != root) root = parent_[root];
        while (parent_[x] != root) {
            const workload::QueryId next = parent_[x];
            parent_[x] = root;
            x = next;
        }
        return root;
    }

    void unite(workload::QueryId a, workload::QueryId b) { parent_[find(a)] = find(b); }

  private:
    std::unordered_map<workload::QueryId, workload::QueryId> parent_;
};

}  // namespace

PrecedenceGraph::Node* PrecedenceGraph::find(workload::QueryId id) {
    const auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

const PrecedenceGraph::Node* PrecedenceGraph::find(workload::QueryId id) const {
    const auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

QueryState PrecedenceGraph::state(workload::QueryId id) const {
    const Node* node = find(id);
    return node == nullptr ? QueryState::kDone : node->state;
}

int PrecedenceGraph::gating_number(workload::QueryId id) const {
    const Node* node = find(id);
    return node == nullptr ? 0 : node->gating_number;
}

std::size_t PrecedenceGraph::partner_count(workload::QueryId id) const {
    const Node* node = find(id);
    return node == nullptr ? 0 : node->partners.size();
}

void PrecedenceGraph::add_job(const workload::Job& job) {
    JobEntry entry;
    entry.job = &job;
    entry.remaining = job.queries.size();
    jobs_[job.id] = entry;
    for (const auto& q : job.queries) {
        Node node;
        node.id = q.id;
        node.job = job.id;
        node.seq = q.seq_in_job;
        node.state = QueryState::kWait;
        node.query = &q;
        nodes_.emplace(q.id, std::move(node));
    }
    if (!gating_enabled_ || job.type != workload::JobType::kOrdered ||
        job.queries.size() < 2)
        return;

    // Pairwise dynamic programs against every active ordered job, processed
    // in descending alignment-score order (the paper's greedy merge).
    struct Candidate {
        std::uint32_t score;
        workload::JobId other;
        Alignment alignment;
    };
    std::vector<Candidate> candidates;
    for (const auto& [other_id, other_entry] : jobs_) {
        if (other_id == job.id || other_entry.remaining == 0) continue;
        if (other_entry.job->type != workload::JobType::kOrdered) continue;
        if (other_entry.job->queries.size() < 2) continue;
        Alignment alignment = align_jobs(job, *other_entry.job);
        ++stats_.alignments_run;
        if (alignment.score == 0) continue;
        candidates.push_back(Candidate{alignment.score, other_id, std::move(alignment)});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) { return a.score > b.score; });

    for (const auto& c : candidates) {
        const JobEntry& other = jobs_.at(c.other);
        bool admitted_any = false;
        for (const AlignedPair& pair : c.alignment.pairs) {
            Node* nl = find(job.queries[pair.a_seq].id);
            Node* nk = find(other.job->queries[pair.b_seq].id);
            if (nl == nullptr || nk == nullptr) continue;
            // Too late to gate a query that is already runnable or running.
            if (nk->state == QueryState::kQueue || nk->state == QueryState::kDone) continue;
            if (try_admit_edge(*nl, *nk)) admitted_any = true;
        }
        if (admitted_any) recompute_gating_numbers(c.other);
    }
    recompute_gating_numbers(job.id);
    JAWS_AUDIT(audit());
}

bool PrecedenceGraph::edge_allowed_between(const Node& a, const Node& b,
                                           std::size_t* crossing,
                                           std::size_t* duplicate) const {
    // Existing edges between job(a) and job(b) must not be crossed or
    // duplicated by the proposed (a, b) edge.
    const JobEntry& ja = jobs_.at(a.job);
    for (const auto& q : ja.job->queries) {
        const Node* n = find(q.id);
        if (n == nullptr) continue;
        for (const workload::QueryId pid : n->partners) {
            const Node* p = find(pid);
            if (p == nullptr || p->job != b.job) continue;
            if (n->seq == a.seq || p->seq == b.seq) {
                ++*duplicate;  // one gating edge per query per job pair
                return false;
            }
            const bool crosses = (n->seq < a.seq && p->seq > b.seq) ||
                                 (n->seq > a.seq && p->seq < b.seq);
            if (crosses) {
                ++*crossing;
                return false;
            }
        }
    }
    return true;
}

bool PrecedenceGraph::would_deadlock(const Node& a, const Node& b,
                                     const std::vector<workload::QueryId>& extra) const {
    // Contract gating components (existing edges + the proposed ones) and
    // look for a cycle in the condensed precedence graph.
    Dsu dsu;
    // jaws-lint: allow(unordered-iteration) -- union-find component
    // membership (and hence the cycle-existence answer below) is invariant
    // to the order edges are united in; only representative *naming* varies.
    for (const auto& [id, node] : nodes_) {
        for (const workload::QueryId pid : node.partners)
            if (nodes_.contains(pid)) dsu.unite(id, pid);
    }
    dsu.unite(a.id, b.id);
    for (const workload::QueryId pid : extra)
        if (nodes_.contains(pid)) dsu.unite(a.id, pid);

    // Build condensed adjacency from per-job precedence chains.
    std::unordered_map<workload::QueryId, std::vector<workload::QueryId>> adjacency;
    for (const auto& [job_id, entry] : jobs_) {
        if (entry.job->type != workload::JobType::kOrdered) continue;
        const Node* prev = nullptr;
        for (const auto& q : entry.job->queries) {
            const Node* cur = find(q.id);
            if (cur == nullptr) continue;  // completed prefix
            if (prev != nullptr) {
                const workload::QueryId u = dsu.find(prev->id);
                const workload::QueryId v = dsu.find(cur->id);
                if (u != v) adjacency[u].push_back(v);
            }
            prev = cur;
        }
    }

    // Iterative DFS cycle detection (colors: 0 white, 1 gray, 2 black).
    std::unordered_map<workload::QueryId, int> color;
    // jaws-lint: allow(unordered-iteration) -- pure existence query: whether
    // a back edge exists does not depend on which component the DFS visits
    // first, and no state escapes this function besides the bool.
    for (const auto& [start, ignored] : adjacency) {
        if (color[start] != 0) continue;
        std::vector<std::pair<workload::QueryId, std::size_t>> stack{{start, 0}};
        color[start] = 1;
        while (!stack.empty()) {
            auto& [u, next] = stack.back();
            const auto it = adjacency.find(u);
            const std::size_t degree = it == adjacency.end() ? 0 : it->second.size();
            if (next >= degree) {
                color[u] = 2;
                stack.pop_back();
                continue;
            }
            const workload::QueryId v = it->second[next++];
            if (color[v] == 1) return true;  // back edge: cycle
            if (color[v] == 0) {
                color[v] = 1;
                stack.emplace_back(v, 0);
            }
        }
    }
    return false;
}

bool PrecedenceGraph::try_admit_edge(Node& nl, Node& nk) {
    if (nl.job == nk.job) return false;
    if (std::find(nl.partners.begin(), nl.partners.end(), nk.id) != nl.partners.end())
        return false;  // already gated together

    // Transitive inheritance (Fig. 4 line 2): the new query inherits all
    // gating edges incident to its partner.
    std::vector<workload::QueryId> admit{nk.id};
    for (const workload::QueryId pid : nk.partners) {
        const Node* p = find(pid);
        if (p == nullptr || p->job == nl.job) continue;
        if (p->state == QueryState::kQueue || p->state == QueryState::kDone) continue;
        admit.push_back(pid);
    }

    // Fig. 4 lines 3-7: the gating number nl would carry — edged queries in
    // its own prefix plus one past the deepest gated partner of the prefix.
    int max_gat_num = 0;
    {
        const JobEntry& jl = jobs_.at(nl.job);
        int prefix_edges = 0;
        for (const auto& q : jl.job->queries) {
            if (q.seq_in_job >= nl.seq) break;
            const Node* n = find(q.id);
            if (n == nullptr || n->partners.empty()) continue;
            ++prefix_edges;
            for (const workload::QueryId pid : n->partners) {
                const Node* p = find(pid);
                if (p != nullptr)
                    max_gat_num = std::max(max_gat_num, p->gating_number + 1);
            }
        }
        max_gat_num = std::max(max_gat_num, prefix_edges);
    }

    // Fig. 4 lines 8-13: validate every inherited edge. The paper uses the
    // gating-number comparison as a cheap deadlock proxy; we track it as a
    // statistic but rely on the exact cycle check below, which admits every
    // feasible edge the proxy would conservatively reject.
    for (const workload::QueryId cid : admit) {
        const Node* c = find(cid);
        assert(c != nullptr);
        if (c->gating_number < max_gat_num) ++stats_.edges_rejected_gating_number;
        std::size_t crossing = 0, duplicate = 0;
        if (!edge_allowed_between(nl, *c, &crossing, &duplicate)) {
            stats_.edges_rejected_crossing += crossing + duplicate;
            return false;
        }
    }

    // Exact deadlock check over the contracted constraint graph.
    if (would_deadlock(nl, nk, admit)) {
        ++stats_.edges_rejected_deadlock;
        return false;
    }

    for (const workload::QueryId cid : admit) {
        Node* c = find(cid);
        nl.partners.push_back(cid);
        c->partners.push_back(nl.id);
        ++stats_.edges_admitted;
    }
    return true;
}

void PrecedenceGraph::recompute_gating_numbers(workload::JobId job_id) {
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return;
    int count = 0;
    for (const auto& q : it->second.job->queries) {
        Node* node = find(q.id);
        if (node == nullptr) continue;
        if (!node->partners.empty()) ++count;
        node->gating_number = count;
    }
}

bool PrecedenceGraph::gating_satisfied(const Node& node) const {
    for (const workload::QueryId pid : node.partners) {
        const Node* p = find(pid);
        if (p == nullptr) continue;  // DONE partners satisfy the gate
        if (p->state == QueryState::kWait) return false;
    }
    return true;
}

std::vector<workload::QueryId> PrecedenceGraph::promote_from(
    const std::vector<workload::QueryId>& seeds) {
    std::vector<workload::QueryId> promoted;
    for (const workload::QueryId id : seeds) {
        Node* node = find(id);
        if (node == nullptr || node->state != QueryState::kReady) continue;
        if (!gating_satisfied(*node)) continue;
        node->state = QueryState::kQueue;
        --ready_count_;
        promoted.push_back(id);
    }
    return promoted;
}

std::vector<workload::QueryId> PrecedenceGraph::on_query_visible(workload::QueryId id) {
    Node* node = find(id);
    assert(node != nullptr && node->state == QueryState::kWait);
    node->state = QueryState::kReady;
    node->visible_tick = ++tick_;
    ++ready_count_;

    // This transition can complete the gate of the node itself and of each of
    // its partners (promoting one node cannot un-block a third, so one pass
    // over this neighbourhood reaches the fixpoint).
    std::vector<workload::QueryId> seeds{id};
    seeds.insert(seeds.end(), node->partners.begin(), node->partners.end());
    return promote_from(seeds);
}

std::vector<workload::QueryId> PrecedenceGraph::on_query_done(workload::QueryId id) {
    Node* node = find(id);
    if (node == nullptr) return {};
    assert(node->state == QueryState::kQueue);
    // Detach from partners (a DONE partner satisfies their gates anyway) and
    // prune the vertex, as the paper prunes completed queries.
    std::vector<workload::QueryId> partners = std::move(node->partners);
    for (const workload::QueryId pid : partners) {
        Node* p = find(pid);
        if (p == nullptr) continue;
        std::erase(p->partners, id);
    }
    const workload::JobId job_id = node->job;
    nodes_.erase(id);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end() && --it->second.remaining == 0) jobs_.erase(it);
    // Pruning cannot newly satisfy a gate (DONE already satisfied it), so no
    // promotions result; kept as a hook point for symmetry.
    JAWS_AUDIT(audit());
    return {};
}

std::vector<workload::QueryId> PrecedenceGraph::force_promote_oldest_ready() {
    Node* oldest = nullptr;
    // jaws-lint: allow(unordered-iteration) -- minimised key
    // (visible_tick, id) is a strict total order (ticks are unique), so the
    // promoted query is independent of hash iteration order.
    for (auto& [id, node] : nodes_) {
        if (node.state != QueryState::kReady) continue;
        const bool older = oldest == nullptr ||
                           node.visible_tick < oldest->visible_tick ||
                           (node.visible_tick == oldest->visible_tick && id < oldest->id);
        if (older) oldest = &node;
    }
    if (oldest == nullptr) return {};
    oldest->state = QueryState::kQueue;
    --ready_count_;
    ++stats_.forced_promotions;
    return {oldest->id};
}

bool PrecedenceGraph::check_invariants() const {
    std::size_t ready = 0;
    // jaws-lint: allow(unordered-iteration) -- read-only validation; the
    // conjunction of per-node checks is order-independent.
    for (const auto& [id, node] : nodes_) {
        if (node.state == QueryState::kReady) ++ready;
        for (const workload::QueryId pid : node.partners) {
            const Node* p = find(pid);
            if (p == nullptr) return false;  // dangling edge
            if (p->job == node.job) return false;  // intra-job gating edge
            if (std::find(p->partners.begin(), p->partners.end(), id) ==
                p->partners.end())
                return false;  // asymmetric edge
            // One edge per query per job pair.
            std::size_t to_that_job = 0;
            for (const workload::QueryId other : node.partners) {
                const Node* o = find(other);
                if (o != nullptr && o->job == p->job) ++to_that_job;
            }
            if (to_that_job > 1) return false;
        }
    }
    if (ready != ready_count_) return false;

    // Deadlock freedom of the current graph: reuse the checker with a
    // degenerate proposal (an existing node united with itself).
    if (!nodes_.empty()) {
        const Node& any = nodes_.begin()->second;
        if (would_deadlock(any, any, {})) return false;
    }
    return true;
}

bool PrecedenceGraph::audit() const {
    const bool ok = check_invariants();
    if (!ok)
        util::contract_violation(__FILE__, __LINE__, "check_invariants()",
                                 "PrecedenceGraph: gating/precedence invariants "
                                 "violated (state counts, edge symmetry, "
                                 "one-edge-per-job-pair, or acyclicity)");
    return ok;
}

}  // namespace jaws::sched
