// Pairwise data-sharing alignment (paper Sec. IV-B, Fig. 3).
//
// The first phase of job-aware scheduling finds the maximal data sharing
// between every pair of ordered jobs with a dynamic program based on the
// Needleman-Wunsch global-alignment algorithm: aligning query j of one job
// with query l of the other scores 1 when the two queries share data
// (A(q_a,j) intersects A(q_b,l)) and 0 otherwise, and skips are free. Every
// aligned sharing pair becomes a candidate gating edge. Alignments are
// monotone by construction, so candidate edges between a job pair never
// cross — the property the admission phase relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/job.h"

namespace jaws::sched {

/// One aligned pair of query indices (0-based positions within each job).
struct AlignedPair {
    std::uint32_t a_seq = 0;
    std::uint32_t b_seq = 0;

    friend bool operator==(const AlignedPair&, const AlignedPair&) = default;
};

/// Whether two queries share data: their atom footprints intersect
/// (both footprints are (timestep, Morton)-sorted, so this is a merge scan).
bool queries_share_data(const workload::Query& a, const workload::Query& b);

/// Result of aligning two jobs.
struct Alignment {
    std::vector<AlignedPair> pairs;  ///< Ascending in both sequences.
    std::uint32_t score = 0;         ///< Number of sharing pairs aligned (== pairs.size()).
};

/// Needleman-Wunsch alignment of `a` against `b` maximising the number of
/// aligned data-sharing query pairs. O(|a|*|b|) time and space.
Alignment align_jobs(const workload::Job& a, const workload::Job& b);

/// Exhaustive (exponential) reference implementation for small inputs; used
/// by tests to certify optimality of align_jobs.
std::uint32_t max_sharing_alignment_bruteforce(const workload::Job& a,
                                               const workload::Job& b);

}  // namespace jaws::sched
