#include "sched/jaws.h"

#include <cassert>
#include <cstdio>

namespace jaws::sched {

JawsScheduler::JawsScheduler(const CostConstants& cost, const cache::BufferCache* cache,
                             const JawsConfig& config)
    : config_(config),
      probe_(cache != nullptr ? std::make_unique<CacheResidencyProbe>(*cache) : nullptr),
      manager_(cost, probe_.get(), config.alpha.initial_alpha),
      graph_(config.job_aware),
      controller_(config.alpha) {}

std::string JawsScheduler::name() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "JAWS(%s k=%zu)", config_.job_aware ? "job-aware" : "base",
                  config_.batch_size_k);
    return buf;
}

void JawsScheduler::on_job_submitted(const workload::Job& job) {
    graph_.add_job(job);
    for (const auto& q : job.queries) queries_[q.id] = &q;
}

void JawsScheduler::enqueue_query(workload::QueryId id, util::SimTime now) {
    const auto it = queries_.find(id);
    assert(it != queries_.end());
    util::SimTime deadline{INT64_MAX};
    if (config_.qos.enabled) {
        // Size-proportional completion guarantee (paper Sec. VII): a query's
        // deadline scales with its own estimated service time, so short
        // queries are promised short waits and long queries long ones.
        const workload::Query& q = *it->second;
        const double est_ms =
            manager_.cost().t_b_ms * static_cast<double>(q.footprint.size()) +
            manager_.cost().t_m_ms * static_cast<double>(q.total_positions());
        deadline = now + util::SimTime::from_millis(config_.qos.slack_factor * est_ms);
        deadlines_[id] = deadline;
        ++qos_stats_.guaranteed;
    }
    for (SubQuery& sub : preprocess(*it->second, now)) {
        sub.deadline = deadline;
        manager_.enqueue(sub);
    }
}

void JawsScheduler::on_query_visible(const workload::Query& query, util::SimTime now) {
    // The graph may promote this query immediately, later (once its gating
    // partners are READY), or promote partners that were waiting on it.
    for (const workload::QueryId id : graph_.on_query_visible(query.id))
        enqueue_query(id, now);
}

void JawsScheduler::on_query_completed(workload::QueryId query, util::SimTime response,
                                       util::SimTime now) {
    for (const workload::QueryId id : graph_.on_query_done(query)) enqueue_query(id, now);
    queries_.erase(query);
    if (config_.qos.enabled) {
        const auto it = deadlines_.find(query);
        if (it != deadlines_.end()) {
            if (now > it->second) {
                ++qos_stats_.misses;
                qos_stats_.tardiness_ms_sum += (now - it->second).millis();
            }
            deadlines_.erase(it);
        }
    }
    if (config_.adaptive_alpha && controller_.on_query_completed(response, now))
        manager_.set_alpha(controller_.alpha());
}

void JawsScheduler::on_residency_changed(const storage::AtomId& atom) {
    manager_.on_residency_changed(atom);
}

std::vector<BatchItem> JawsScheduler::next_batch(util::SimTime now) {
    std::vector<BatchItem> batch;
    if (config_.qos.enabled) {
        // Deadline rescue: depart from contention order only when the
        // earliest guarantee is at risk ("there is still elasticity in the
        // workload that permits the reordering of queries" — Sec. VII).
        const auto margin = util::SimTime::from_millis(config_.qos.margin_ms);
        bool rescued = false;
        while (batch.size() < config_.batch_size_k) {
            const auto urgent = manager_.earliest_deadline_atom();
            if (!urgent || urgent->second - now > margin) break;
            batch.push_back(BatchItem{urgent->first, manager_.drain_atom(urgent->first)});
            rescued = true;
        }
        if (rescued) {
            ++qos_stats_.edf_dispatches;
            return batch;
        }
    }
    if (config_.two_level) {
        for (const storage::AtomId& atom :
             manager_.pick_two_level_batch(config_.batch_size_k, now)) {
            batch.push_back(BatchItem{atom, manager_.drain_atom(atom)});
        }
    } else if (const auto best = manager_.pick_best_atom()) {
        batch.push_back(BatchItem{*best, manager_.drain_atom(*best)});
    }
    return batch;
}

bool JawsScheduler::unstick(util::SimTime now) {
    if (!graph_.has_ready()) return false;
    const auto released = graph_.force_promote_oldest_ready();
    for (const workload::QueryId id : released) enqueue_query(id, now);
    return !released.empty();
}

}  // namespace jaws::sched
