#include "sched/alignment.h"

#include <algorithm>
#include <cassert>

namespace jaws::sched {

bool queries_share_data(const workload::Query& a, const workload::Query& b) {
    if (a.timestep != b.timestep) return false;
    // Merge scan over the Morton-sorted footprints.
    std::size_t i = 0, j = 0;
    while (i < a.footprint.size() && j < b.footprint.size()) {
        const std::uint64_t ma = a.footprint[i].atom.morton;
        const std::uint64_t mb = b.footprint[j].atom.morton;
        if (ma == mb) return true;
        if (ma < mb)
            ++i;
        else
            ++j;
    }
    return false;
}

Alignment align_jobs(const workload::Job& a, const workload::Job& b) {
    const std::size_t n = a.queries.size();
    const std::size_t m = b.queries.size();
    Alignment out;
    if (n == 0 || m == 0) return out;

    // score[i][j] = best number of sharing pairs aligning a[0..i) with b[0..j).
    // Skips cost nothing, so this is longest-common-subsequence-like with a
    // sharing predicate: m_{i,j} = max(m_{i-1,j-1} + s_{i,j}, m_{i,j-1},
    // m_{i-1,j}) exactly as in the paper's Fig. 3.
    std::vector<std::vector<std::uint32_t>> score(n + 1,
                                                  std::vector<std::uint32_t>(m + 1, 0));
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const std::uint32_t s =
                queries_share_data(a.queries[i - 1], b.queries[j - 1]) ? 1 : 0;
            score[i][j] = std::max({score[i - 1][j - 1] + s, score[i][j - 1],
                                    score[i - 1][j]});
        }
    }
    out.score = score[n][m];

    // Traceback, emitting only pairs that actually share data.
    std::size_t i = n, j = m;
    while (i > 0 && j > 0) {
        const std::uint32_t s =
            queries_share_data(a.queries[i - 1], b.queries[j - 1]) ? 1 : 0;
        if (s == 1 && score[i][j] == score[i - 1][j - 1] + 1) {
            out.pairs.push_back(AlignedPair{static_cast<std::uint32_t>(i - 1),
                                            static_cast<std::uint32_t>(j - 1)});
            --i;
            --j;
        } else if (score[i][j] == score[i - 1][j]) {
            --i;
        } else if (score[i][j] == score[i][j - 1]) {
            --j;
        } else {
            // Non-sharing diagonal move.
            --i;
            --j;
        }
    }
    std::reverse(out.pairs.begin(), out.pairs.end());
    assert(out.pairs.size() == out.score);
    return out;
}

namespace {

std::uint32_t brute(const workload::Job& a, const workload::Job& b, std::size_t i,
                    std::size_t j) {
    if (i == a.queries.size() || j == b.queries.size()) return 0;
    std::uint32_t best = std::max(brute(a, b, i + 1, j), brute(a, b, i, j + 1));
    const std::uint32_t s = queries_share_data(a.queries[i], b.queries[j]) ? 1 : 0;
    best = std::max(best, s + brute(a, b, i + 1, j + 1));
    return best;
}

}  // namespace

std::uint32_t max_sharing_alignment_bruteforce(const workload::Job& a,
                                               const workload::Job& b) {
    return brute(a, b, 0, 0);
}

}  // namespace jaws::sched
