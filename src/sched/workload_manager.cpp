#include "sched/workload_manager.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/contracts.h"

namespace jaws::sched {

WorkloadManager::WorkloadManager(const CostConstants& cost, const ResidencyProbe* probe,
                                 double alpha)
    : cost_(cost), probe_(probe), alpha_(alpha) {
    if (cost_.atoms_per_step == 0) cost_.atoms_per_step = 1;
}

double WorkloadManager::compute_utility(const storage::AtomId& atom,
                                        const AtomQueue& q) const {
    if (q.positions == 0) return 0.0;
    const double w = static_cast<double>(q.positions);
    const double phi = (probe_ != nullptr && probe_->resident(atom)) ? 0.0 : 1.0;
    return w / (cost_.t_b_ms * phi + cost_.t_m_ms * w);
}

double WorkloadManager::compute_key(const AtomQueue& q) const {
    // Static part of U_e: U_t*(1-alpha) + (now - oldest)*alpha ranks the same
    // as U_t*(1-alpha) - oldest*alpha at any fixed `now`.
    return q.utility * (1.0 - alpha_) - q.oldest.millis() * alpha_;
}

void WorkloadManager::index_insert(const storage::AtomId& atom, AtomQueue& q) {
    q.utility = compute_utility(atom, q);
    q.key = compute_key(q);
    order_.emplace(-q.key, atom.key());
    StepAgg& agg = steps_[atom.timestep];
    agg.utility_sum += q.utility;
    agg.key_sum += q.key;
    ++agg.atoms;
    agg.by_utility.emplace(-q.utility, atom.key());
}

void WorkloadManager::index_erase(const storage::AtomId& atom, const AtomQueue& q) {
    order_.erase({-q.key, atom.key()});
    const auto it = steps_.find(atom.timestep);
    assert(it != steps_.end());
    it->second.utility_sum -= q.utility;
    it->second.key_sum -= q.key;
    --it->second.atoms;
    it->second.by_utility.erase({-q.utility, atom.key()});
    if (it->second.atoms == 0) steps_.erase(it);
}

void WorkloadManager::enqueue(const SubQuery& sub) {
    AtomQueue& q = queues_[sub.atom];
    if (!q.items.empty()) index_erase(sub.atom, q);
    if (q.items.empty()) q.oldest = sub.enqueue_time;
    if (sub.deadline < q.min_deadline) {
        if (q.min_deadline != util::SimTime::max())
            deadlines_.erase({q.min_deadline, sub.atom.key()});
        q.min_deadline = sub.deadline;
        deadlines_.emplace(q.min_deadline, sub.atom.key());
    }
    q.items.push_back(sub);
    q.positions += sub.positions;
    total_positions_ += sub.positions;
    ++total_subqueries_;
    index_insert(sub.atom, q);
    JAWS_AUDIT((++audit_tick_ & 63) == 0 && audit());
}

std::vector<SubQuery> WorkloadManager::drain_atom(const storage::AtomId& atom) {
    const auto it = queues_.find(atom);
    if (it == queues_.end()) return {};
    index_erase(atom, it->second);
    if (it->second.min_deadline != util::SimTime::max())
        deadlines_.erase({it->second.min_deadline, atom.key()});
    std::vector<SubQuery> items = std::move(it->second.items);
    total_positions_ -= it->second.positions;
    total_subqueries_ -= items.size();
    queues_.erase(it);
    JAWS_AUDIT((++audit_tick_ & 63) == 0 && audit());
    return items;
}

void WorkloadManager::on_residency_changed(const storage::AtomId& atom) {
    const auto it = queues_.find(atom);
    if (it == queues_.end()) return;
    index_erase(atom, it->second);
    index_insert(atom, it->second);
}

std::optional<storage::AtomId> WorkloadManager::pick_best_atom() const {
    if (order_.empty()) return std::nullopt;
    return storage::AtomId::from_key(order_.begin()->second);
}

std::vector<storage::AtomId> WorkloadManager::pick_two_level_batch(std::size_t k,
                                                                   util::SimTime now) const {
    if (steps_.empty()) return {};
    // Coarse level: the time step with the highest mean aged throughput,
    // where the mean is over *all* atoms of the step (atoms without pending
    // work contribute zero), i.e. total contention mass / atoms_per_step.
    // Each pending atom's U_e is its static key plus now*alpha, so the exact
    // step sum is key_sum + pending_count * now * alpha.
    const StepAgg* best = nullptr;
    double best_sum = 0.0;
    const double now_term = now.millis() * alpha_;
    for (const auto& [t, agg] : steps_) {
        const double sum = agg.key_sum + static_cast<double>(agg.atoms) * now_term;
        if (best == nullptr || sum > best_sum) {
            best_sum = sum;
            best = &agg;
        }
    }
    // Fine level: up to k atoms of that step with U_t above the step's mean
    // U_t over all atoms — a deliberately low bar (paper Sec. V: "the impact
    // beyond 50 is marginal because only atoms with workload throughput
    // greater than the mean value are considered") — in Morton order.
    const double mean_ut = best->utility_sum / static_cast<double>(cost_.atoms_per_step);
    std::vector<storage::AtomId> batch;
    for (const auto& [neg_ut, atom_key] : best->by_utility) {
        if (batch.size() >= k) break;
        if (-neg_ut < mean_ut && !batch.empty()) break;  // below mean: stop
        batch.push_back(storage::AtomId::from_key(atom_key));
    }
    std::sort(batch.begin(), batch.end(), [](const storage::AtomId& a,
                                             const storage::AtomId& b) {
        return a.morton < b.morton;
    });
    return batch;
}

std::optional<std::pair<storage::AtomId, util::SimTime>>
WorkloadManager::earliest_deadline_atom() const {
    if (deadlines_.empty()) return std::nullopt;
    const auto& [deadline, atom_key] = *deadlines_.begin();
    return std::make_pair(storage::AtomId::from_key(atom_key), deadline);
}

double WorkloadManager::atom_utility(const storage::AtomId& atom) const {
    const auto it = queues_.find(atom);
    return it == queues_.end() ? 0.0 : it->second.utility;
}

double WorkloadManager::timestep_mean_utility(std::uint32_t t) const {
    const auto it = steps_.find(t);
    if (it == steps_.end()) return 0.0;
    return it->second.utility_sum / static_cast<double>(it->second.atoms);
}

void WorkloadManager::set_alpha(double alpha) {
    assert(alpha >= 0.0 && alpha <= 1.0);
    // jaws-lint: allow(float-equality) -- exact-identity fast path only: a
    // missed match merely rebuilds the index (correct either way).
    if (alpha == alpha_) return;
    alpha_ = alpha;
    rebuild_index();
}

void WorkloadManager::rebuild_index() {
    order_.clear();
    steps_.clear();
    // Rebuild in atom-key order: StepAgg sums doubles, and floating-point
    // accumulation order must not depend on the hash table's layout for the
    // aggregates to be bit-reproducible across platforms.
    std::vector<storage::AtomId> atoms;
    atoms.reserve(queues_.size());
    // jaws-lint: allow(unordered-iteration) -- order normalised by the sort below.
    for (auto& [atom, q] : queues_) atoms.push_back(atom);
    std::sort(atoms.begin(), atoms.end());
    for (const storage::AtomId& atom : atoms) index_insert(atom, queues_.at(atom));
    JAWS_AUDIT(audit());
}

bool WorkloadManager::audit() const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            util::contract_violation(__FILE__, __LINE__, expr, msg);
        }
    };
    // The incremental step aggregates accumulate floating-point sums in
    // insertion order; re-deriving them in sorted order is only equal up to
    // rounding, so aggregate comparisons use a relative tolerance.
    const auto close = [](double a, double b) {
        return std::abs(a - b) <= 1e-9 * (1.0 + std::abs(a) + std::abs(b));
    };

    std::uint64_t positions = 0;
    std::size_t subqueries = 0;
    std::map<std::uint32_t, std::pair<double, std::size_t>> step_sums;  // (U_t sum, atoms)
    std::map<std::uint32_t, double> step_key_sums;
    std::size_t deadlined = 0;
    // jaws-lint: allow(unordered-iteration) -- read-only validation; every
    // per-queue check is independent and the re-derived sums are compared
    // with a tolerance, so hash order cannot change the audit verdict.
    for (const auto& [atom, q] : queues_) {
        check(!q.items.empty(), "no empty atom queue is retained",
              "WorkloadManager: empty workload queue left in the map");
        std::uint64_t queue_positions = 0;
        util::SimTime oldest = q.items.empty() ? util::SimTime::zero()
                                               : q.items.front().enqueue_time;
        util::SimTime min_deadline = util::SimTime::max();
        for (const SubQuery& sub : q.items) {
            queue_positions += sub.positions;
            oldest = std::min(oldest, sub.enqueue_time);
            min_deadline = std::min(min_deadline, sub.deadline);
        }
        check(q.positions == queue_positions, "cached positions re-derive",
              "WorkloadManager: per-atom position count out of sync");
        check(q.oldest == oldest, "cached oldest re-derives",
              "WorkloadManager: per-atom oldest enqueue time out of sync");
        check(q.min_deadline == min_deadline, "cached min deadline re-derives",
              "WorkloadManager: per-atom deadline cache out of sync");
        check(close(q.utility, compute_utility(atom, q)), "cached U_t re-derives",
              "WorkloadManager: cached utility out of sync with Eq. 1");
        check(order_.count({-q.key, atom.key()}) == 1, "ranking entry present",
              "WorkloadManager: atom missing from the ordered ranking");
        const auto step = steps_.find(atom.timestep);
        check(step != steps_.end() &&
                  step->second.by_utility.count({-q.utility, atom.key()}) == 1,
              "per-step index entry present",
              "WorkloadManager: atom missing from its step's utility index");
        positions += queue_positions;
        subqueries += q.items.size();
        auto& sums = step_sums[atom.timestep];
        sums.first += q.utility;
        ++sums.second;
        step_key_sums[atom.timestep] += q.key;
        if (min_deadline != util::SimTime::max()) {
            ++deadlined;
            check(deadlines_.count({min_deadline, atom.key()}) == 1,
                  "deadline index entry present",
                  "WorkloadManager: deadlined atom missing from the index");
        }
    }
    check(positions == total_positions_, "total positions re-derive",
          "WorkloadManager: global position total out of sync");
    check(subqueries == total_subqueries_, "total sub-queries re-derive",
          "WorkloadManager: global sub-query total out of sync");
    check(order_.size() == queues_.size(), "one ranking entry per atom",
          "WorkloadManager: ordered ranking size out of sync");
    check(deadlines_.size() == deadlined, "one deadline entry per deadlined atom",
          "WorkloadManager: deadline index size out of sync");
    check(steps_.size() == step_sums.size(), "one aggregate per pending step",
          "WorkloadManager: stale per-step aggregate retained");
    for (const auto& [t, agg] : steps_) {
        const auto sums = step_sums.find(t);
        if (sums == step_sums.end()) continue;  // size mismatch reported above
        check(agg.atoms == sums->second.second &&
                  agg.by_utility.size() == sums->second.second,
              "step atom count re-derives",
              "WorkloadManager: per-step atom count out of sync");
        check(close(agg.utility_sum, sums->second.first),
              "step utility sum re-derives",
              "WorkloadManager: per-step utility aggregate out of sync");
        check(close(agg.key_sum, step_key_sums[t]), "step key sum re-derives",
              "WorkloadManager: per-step key aggregate out of sync");
    }
    return ok;
}

}  // namespace jaws::sched
