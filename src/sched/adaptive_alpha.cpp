#include "sched/adaptive_alpha.h"

#include <algorithm>
#include <cmath>

namespace jaws::sched {

AdaptiveAlphaController::AdaptiveAlphaController(const AdaptiveAlphaConfig& config)
    : config_(config),
      alpha_(config.initial_alpha),
      rt_ewma_(config.smoothing),
      tp_ewma_(config.smoothing) {}

bool AdaptiveAlphaController::on_query_completed(util::SimTime response_time,
                                                 util::SimTime now) {
    if (!run_started_) {
        run_start_ = now;
        run_started_ = true;
    }
    run_rt_.add(response_time.millis());
    if (run_rt_.count() < config_.run_length) return false;
    close_run(now);
    return true;
}

void AdaptiveAlphaController::close_run(util::SimTime now) {
    const double elapsed_s = std::max(1e-9, (now - run_start_).seconds());
    const double rt = rt_ewma_.update(run_rt_.mean());
    const double tp = tp_ewma_.update(static_cast<double>(run_rt_.count()) / elapsed_s);
    ++runs_;
    run_rt_ = util::RunningStats{};
    run_started_ = false;

    if (!have_prev_) {
        prev_rt_ = rt;
        prev_tp_ = tp;
        have_prev_ = true;
        return;
    }
    const double rt_ratio = prev_rt_ > 0.0 ? rt / prev_rt_ : 1.0;
    const double tp_ratio = prev_tp_ > 0.0 ? tp / prev_tp_ : 1.0;
    prev_rt_ = rt;
    prev_tp_ = tp;

    const bool no_change = std::fabs(rt_ratio - 1.0) < config_.stall_epsilon &&
                           std::fabs(tp_ratio - 1.0) < config_.stall_epsilon;
    if (no_change) {
        if (++stall_runs_ >= 2) {
            // Explore the trade-off curve rather than staying stuck
            // (paper: "vary the age bias ... if there is no change during
            // two consecutive runs").
            alpha_ = std::clamp(alpha_ + explore_direction_ * config_.explore_step, 0.0, 1.0);
            // jaws-lint: allow(float-equality) -- std::clamp returns its
            // bound *exactly* at saturation, so equality is precise here.
            if (alpha_ == 0.0 || alpha_ == 1.0) explore_direction_ = -explore_direction_;
            ++explorations_;
            stall_runs_ = 0;
        }
        return;
    }
    stall_runs_ = 0;

    if (rt_ratio >= 1.0 && tp_ratio < rt_ratio) {
        // Rule (1): saturation rose and throughput lagged — favour contention.
        alpha_ -= std::min(rt_ratio - tp_ratio, alpha_);
    } else if (rt_ratio < 1.0 && tp_ratio < rt_ratio) {
        // Rule (2): saturation fell and throughput fell faster — favour age.
        alpha_ += std::min(rt_ratio - tp_ratio, 1.0 - alpha_);
    }
    alpha_ = std::clamp(alpha_, 0.0, 1.0);
}

}  // namespace jaws::sched
