// NoShare baseline scheduler (paper Sec. VI).
//
// Evaluates each query independently and in arrival order: no sub-query
// batching across queries, no contention metric. A dispatched batch is simply
// the oldest visible query's own atoms (Morton-sorted, as the production
// system evaluates every query). I/O sharing only happens implicitly through
// whatever the buffer cache retains.
#pragma once

#include <deque>

#include "sched/scheduler.h"

namespace jaws::sched {

/// FIFO, query-at-a-time scheduling.
class NoShareScheduler final : public Scheduler {
  public:
    std::string name() const override { return "NoShare"; }

    void on_query_visible(const workload::Query& query, util::SimTime now) override;
    std::vector<BatchItem> next_batch(util::SimTime now) override;
    bool has_pending() const override { return !fifo_.empty(); }
    std::size_t pending_count() const override {
        std::size_t n = 0;
        for (const auto& subqueries : fifo_) n += subqueries.size();
        return n;
    }

  private:
    // Each entry is one visible query's sub-queries, preprocessed eagerly so
    // no reference to the caller's Query outlives on_query_visible.
    std::deque<std::vector<SubQuery>> fifo_;
};

}  // namespace jaws::sched
