// Completion-time guarantees (paper Sec. VII, future work).
//
// "We are currently exploring techniques that provide predictable and fair
// completion time guarantees that are proportional to query size (e.g. short
// queries are delayed less than long queries). We observe that even with
// real-time constraints that bound the completion time of queries, there is
// still elasticity in the workload that permits the reordering of queries to
// exploit data sharing."
//
// Every query receives a deadline proportional to its own estimated service
// time; the scheduler stays in contention order while guarantees are safe
// and switches to earliest-deadline-first rescue dispatches only when one
// would otherwise be missed.
#pragma once

#include <cstdint>

namespace jaws::sched {

/// QoS mode configuration.
struct QosConfig {
    bool enabled = false;
    double slack_factor = 8.0;   ///< Deadline = visible + slack * estimated service.
    double margin_ms = 5000.0;   ///< Rescue when deadline - now falls below this.
};

/// Per-query completion-guarantee accounting.
struct QosStats {
    std::uint64_t guaranteed = 0;     ///< Queries that carried a deadline.
    std::uint64_t misses = 0;         ///< Completed after their deadline.
    double tardiness_ms_sum = 0.0;    ///< Total lateness of missed deadlines.
    std::uint64_t edf_dispatches = 0; ///< Batches driven by deadline rescue.

    double miss_rate() const noexcept {
        return guaranteed ? static_cast<double>(misses) / static_cast<double>(guaranteed)
                          : 0.0;
    }
    double mean_tardiness_ms() const noexcept {
        return misses ? tardiness_ms_sum / static_cast<double>(misses) : 0.0;
    }
};

}  // namespace jaws::sched
