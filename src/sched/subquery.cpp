#include "sched/subquery.h"

#include <algorithm>

#include "util/morton.h"

namespace jaws::sched {

std::vector<SubQuery> preprocess(const workload::Query& query, util::SimTime now) {
    std::vector<SubQuery> out;
    out.reserve(query.footprint.size());
    for (const auto& req : query.footprint) {
        SubQuery sub;
        sub.query = query.id;
        sub.atom = req.atom;
        sub.positions = req.positions;
        sub.enqueue_time = now;
        out.push_back(std::move(sub));
    }

    // Kernel supports: for each footprint atom, the face-neighbour atoms that
    // are themselves part of the footprint (the position cloud is contiguous,
    // so boundary positions sample from exactly these). Footprints are
    // Morton-sorted, so membership is a binary search.
    const auto member = [&](std::uint64_t code) {
        const auto it = std::lower_bound(
            query.footprint.begin(), query.footprint.end(), code,
            [](const workload::AtomRequest& r, std::uint64_t c) { return r.atom.morton < c; });
        return it != query.footprint.end() && it->atom.morton == code;
    };
    if (query.footprint.size() < 2) return out;
    for (SubQuery& sub : out) {
        const util::Coord3 c = util::morton_decode(sub.atom.morton);
        const auto push_if = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
            if (x < 0 || y < 0 || z < 0) return;
            const std::uint64_t code =
                util::morton_encode(static_cast<std::uint32_t>(x),
                                    static_cast<std::uint32_t>(y),
                                    static_cast<std::uint32_t>(z));
            if (member(code)) sub.supports.push_back(code);
        };
        // Each shared face is owned by the higher-coordinate atom: its kernel
        // spills into the lower (Morton-earlier) neighbour, so every
        // adjacency is charged exactly once across the footprint, and a
        // Morton-ordered evaluation pass has always *just read* the atom the
        // spill needs — the locality the two-level framework exploits.
        const auto x = static_cast<std::int64_t>(c.x);
        const auto y = static_cast<std::int64_t>(c.y);
        const auto z = static_cast<std::int64_t>(c.z);
        push_if(x - 1, y, z);
        push_if(x, y - 1, z);
        push_if(x, y, z - 1);
    }
    return out;
}

}  // namespace jaws::sched
