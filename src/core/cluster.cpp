#include "core/cluster.h"

#include <algorithm>
#include <future>

#include "core/engine.h"
#include "util/thread_pool.h"

namespace jaws::core {

std::size_t TurbulenceCluster::node_of(std::uint64_t morton, std::uint64_t atoms_per_step,
                                       std::size_t nodes) {
    if (nodes <= 1) return 0;
    const std::uint64_t per_node = (atoms_per_step + nodes - 1) / nodes;
    return std::min<std::uint64_t>(morton / per_node, nodes - 1);
}

std::vector<workload::Workload> TurbulenceCluster::partition(
    const workload::Workload& workload) const {
    const std::uint64_t aps = config_.node.grid.atoms_per_step();
    std::vector<workload::Workload> parts(config_.nodes);
    for (const auto& job : workload.jobs) {
        std::vector<workload::Job> projected(config_.nodes);
        for (std::size_t n = 0; n < config_.nodes; ++n) {
            projected[n].id = job.id;
            projected[n].user = job.user;
            projected[n].type = job.type;
            projected[n].arrival = job.arrival;
        }
        for (const auto& q : job.queries) {
            // Split the footprint by owning node.
            std::vector<std::vector<workload::AtomRequest>> split(config_.nodes);
            for (const auto& req : q.footprint)
                split[node_of(req.atom.morton, aps, config_.nodes)].push_back(req);
            for (std::size_t n = 0; n < config_.nodes; ++n) {
                if (split[n].empty()) continue;
                workload::Query part = q;
                part.footprint = std::move(split[n]);
                part.positions.clear();  // scheduling-scale runs are descriptor-only
                part.seq_in_job = static_cast<std::uint32_t>(projected[n].queries.size());
                projected[n].queries.push_back(std::move(part));
            }
        }
        for (std::size_t n = 0; n < config_.nodes; ++n)
            if (!projected[n].queries.empty())
                parts[n].jobs.push_back(std::move(projected[n]));
    }
    return parts;
}

ClusterReport TurbulenceCluster::run(const workload::Workload& workload) const {
    const std::vector<workload::Workload> parts = partition(workload);

    util::ThreadPool pool(std::min<std::size_t>(config_.nodes, 8));
    std::vector<std::future<RunReport>> futures;
    futures.reserve(parts.size());
    for (const auto& part : parts) {
        futures.push_back(pool.submit([this, &part]() -> RunReport {
            if (part.jobs.empty()) return RunReport{};
            Engine engine(config_.node);
            return engine.run(part);
        }));
    }

    ClusterReport report;
    std::size_t total_parts = 0;
    double weighted_rt = 0.0;
    std::uint64_t hits = 0, misses = 0;
    for (auto& f : futures) {
        report.per_node.push_back(f.get());
        const RunReport& r = report.per_node.back();
        report.makespan = std::max(report.makespan, r.makespan);
        total_parts += r.queries;
        weighted_rt += r.mean_response_ms * static_cast<double>(r.queries);
        hits += r.cache.hits;
        misses += r.cache.misses;
    }
    const double seconds = std::max(1e-9, report.makespan.seconds());
    report.total_throughput_qps = static_cast<double>(total_parts) / seconds;
    report.mean_response_ms =
        total_parts ? weighted_rt / static_cast<double>(total_parts) : 0.0;
    report.cache_hit_rate =
        (hits + misses) ? static_cast<double>(hits) / static_cast<double>(hits + misses) : 0.0;
    return report;
}

}  // namespace jaws::core
