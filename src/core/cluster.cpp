#include "core/cluster.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/engine.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace jaws::core {

void ClusterConfig::validate() const {
    if (nodes == 0)
        throw std::invalid_argument("ClusterConfig::validate: nodes must be positive");
    if (replication == 0 || replication > nodes)
        throw std::invalid_argument(
            "ClusterConfig::validate: replication must lie in [1, nodes], got " +
            std::to_string(replication) + " with " + std::to_string(nodes) + " nodes");
    for (const storage::NodeDownEvent& ev : node.faults.node_down)
        if (ev.node >= nodes)
            throw std::invalid_argument(
                "ClusterConfig::validate: node_down event names node " +
                std::to_string(ev.node) + " but the cluster has only " +
                std::to_string(nodes) + " nodes");
    node.validate();
}

TurbulenceCluster::TurbulenceCluster(const ClusterConfig& config) : config_(config) {
    config_.validate();
}

std::size_t TurbulenceCluster::node_of(std::uint64_t morton, std::uint64_t atoms_per_step,
                                       std::size_t nodes) {
    if (nodes <= 1) return 0;
    const std::uint64_t per_node = (atoms_per_step + nodes - 1) / nodes;
    return std::min<std::uint64_t>(morton / per_node, nodes - 1);
}

std::vector<workload::Workload> TurbulenceCluster::partition(
    const workload::Workload& workload) const {
    const std::uint64_t aps = config_.node.grid.atoms_per_step();
    std::vector<workload::Workload> parts(config_.nodes);
    for (const auto& job : workload.jobs) {
        std::vector<workload::Job> projected(config_.nodes);
        for (std::size_t n = 0; n < config_.nodes; ++n) {
            projected[n].id = job.id;
            projected[n].user = job.user;
            projected[n].type = job.type;
            projected[n].arrival = job.arrival;
        }
        for (const auto& q : job.queries) {
            // Split the footprint by owning node.
            std::vector<std::vector<workload::AtomRequest>> split(config_.nodes);
            for (const auto& req : q.footprint)
                split[node_of(req.atom.morton, aps, config_.nodes)].push_back(req);
            for (std::size_t n = 0; n < config_.nodes; ++n) {
                if (split[n].empty()) continue;
                workload::Query part = q;
                part.footprint = std::move(split[n]);
                // Positions follow their owning node (materialised runs
                // evaluate them there); descriptor-only queries carry none.
                part.positions.clear();
                for (const auto& p : q.positions)
                    if (node_of(config_.node.grid.atom_morton_of(p), aps,
                                config_.nodes) == n)
                        part.positions.push_back(p);
                part.seq_in_job = static_cast<std::uint32_t>(projected[n].queries.size());
                projected[n].queries.push_back(std::move(part));
            }
        }
        for (std::size_t n = 0; n < config_.nodes; ++n)
            if (!projected[n].queries.empty())
                parts[n].jobs.push_back(std::move(projected[n]));
    }
    return parts;
}

namespace {

/// One node engine's result: its report plus, if it died mid-run, the share
/// it left unfinished.
struct NodeRun {
    RunReport report;
    workload::Workload leftover;
};

/// Mutex-guarded sink the parallel node engines write into. Results land in
/// per-node slots so the aggregation below reads them in node order
/// regardless of completion order; the first worker exception is rethrown
/// on take() (matching the old future-based transport).
class NodeRunCollector {
  public:
    explicit NodeRunCollector(std::size_t nodes) : runs_(nodes) {}

    void set(std::size_t node, NodeRun run) {
        util::MutexLock lock(mu_);
        runs_[node] = std::move(run);
    }

    void record_error(std::exception_ptr error) noexcept {
        util::MutexLock lock(mu_);
        if (error_ == nullptr) error_ = std::move(error);
    }

    /// Call once, after every worker has finished.
    std::vector<NodeRun> take() {
        util::MutexLock lock(mu_);
        if (error_ != nullptr) std::rethrow_exception(error_);
        return std::move(runs_);
    }

  private:
    util::Mutex mu_;
    std::vector<NodeRun> runs_ GUARDED_BY(mu_);
    std::exception_ptr error_ GUARDED_BY(mu_);
};

/// The portion of `part` that `outcomes` did not complete (a dead node's
/// unfinished share), with jobs re-sequenced for a replica re-run.
workload::Workload unfinished_part(const workload::Workload& part,
                                   const std::vector<QueryOutcome>& outcomes) {
    std::unordered_set<workload::QueryId> done;
    done.reserve(outcomes.size());
    for (const QueryOutcome& o : outcomes) done.insert(o.query);
    workload::Workload left;
    for (const workload::Job& job : part.jobs) {
        workload::Job projected;
        projected.id = job.id;
        projected.user = job.user;
        projected.type = job.type;
        projected.arrival = job.arrival;
        for (const workload::Query& q : job.queries) {
            if (done.contains(q.id)) continue;
            workload::Query copy = q;
            copy.seq_in_job = static_cast<std::uint32_t>(projected.queries.size());
            projected.queries.push_back(std::move(copy));
        }
        if (!projected.queries.empty()) left.jobs.push_back(std::move(projected));
    }
    return left;
}

}  // namespace

ClusterReport TurbulenceCluster::run(const workload::Workload& workload) const {
    const std::vector<workload::Workload> parts = partition(workload);

    // Earliest death per node (cluster-level faults ride in the node
    // template's FaultSpec; INT64_MAX = the node survives the run).
    std::vector<util::SimTime> death(config_.nodes, util::SimTime{INT64_MAX});
    for (const storage::NodeDownEvent& ev : config_.node.faults.node_down)
        if (ev.at < death[ev.node]) death[ev.node] = ev.at;

    // One evaluation pool shared across every node engine and recovery run:
    // real interpolation from all nodes multiplexes onto a single set of
    // worker threads instead of each engine spawning nodes × workers of its
    // own. Descriptor-only runs never create one.
    std::unique_ptr<util::ThreadPool> shared_eval;
    EngineConfig node_template = config_.node;
    if (node_template.eval.pool == nullptr && node_template.eval.parallel &&
        node_template.materialize_data) {
        shared_eval = std::make_unique<util::ThreadPool>(
            node_template.eval.threads != 0 ? node_template.eval.threads
                                            : node_template.compute_workers);
        node_template.eval.pool = shared_eval.get();
    }

    util::ThreadPool pool(std::min<std::size_t>(config_.nodes, 8));
    NodeRunCollector collector(parts.size());
    for (std::size_t n = 0; n < parts.size(); ++n) {
        pool.submit([&parts, &death, &collector, &node_template, n] {
            try {
                NodeRun out;
                const workload::Workload& part = parts[n];
                if (!part.jobs.empty()) {
                    EngineConfig cfg = node_template;
                    cfg.halt_at = death[n];
                    Engine engine(cfg);
                    out.report = engine.run(part);
                    if (out.report.halted)
                        out.leftover = unfinished_part(part, engine.outcomes());
                }
                collector.set(n, std::move(out));
            } catch (...) {
                collector.record_error(std::current_exception());
            }
        });
    }
    pool.wait_idle();
    std::vector<NodeRun> node_runs = collector.take();

    ClusterReport report;
    std::size_t total_parts = 0;
    double weighted_rt = 0.0;
    std::uint64_t hits = 0, misses = 0;
    double run_seconds = 0.0, weighted_disk_util = 0.0, weighted_cpu_util = 0.0;
    std::vector<double> pooled_response_ms;
    const auto accumulate = [&](const RunReport& r) {
        total_parts += r.queries;
        weighted_rt += r.mean_response_ms * static_cast<double>(r.queries);
        hits += r.cache.hits;
        misses += r.cache.misses;
        run_seconds += r.makespan.seconds();
        weighted_disk_util += r.disk_utilization * r.makespan.seconds();
        weighted_cpu_util += r.cpu_utilization * r.makespan.seconds();
        report.degraded_queries += r.degraded_queries;
        report.read_retries += r.read_retries;
        report.read_failures += r.read_failures;
        report.hedges_issued += r.hedges_issued;
        report.hedges_won += r.hedges_won;
        report.hedges_lost += r.hedges_lost;
        report.cancellations += r.cancellations;
        report.wasted_service += r.wasted_service;
        report.deadline_misses += r.deadline_misses;
        report.retries_suppressed += r.retries_suppressed;
        pooled_response_ms.insert(pooled_response_ms.end(), r.response_ms.begin(),
                                  r.response_ms.end());
    };

    // When a node dies its share finishes on a replica; the replica can only
    // start the re-run once it has drained its own share, so track each
    // node's busy-until time (in the shared virtual timeline).
    std::vector<util::SimTime> busy_until(config_.nodes, util::SimTime::zero());
    std::vector<workload::Workload> leftovers(config_.nodes);
    for (std::size_t n = 0; n < node_runs.size(); ++n) {
        NodeRun run = std::move(node_runs[n]);
        report.makespan = std::max(report.makespan, run.report.makespan);
        accumulate(run.report);
        if (!parts[n].jobs.empty())
            busy_until[n] = parts[n].jobs.front().arrival + run.report.makespan;
        report.per_node.push_back(std::move(run.report));
        leftovers[n] = std::move(run.leftover);
    }

    const util::SimTime global_start =
        workload.jobs.empty() ? util::SimTime::zero() : workload.jobs.front().arrival;
    for (std::size_t d = 0; d < config_.nodes; ++d) {
        if (death[d].micros == INT64_MAX) continue;
        ++report.dead_nodes;
        const workload::Workload& left = leftovers[d];
        if (left.jobs.empty()) continue;  // died with nothing outstanding

        // First surviving holder of d's Morton range under chained
        // declustering: nodes d+1 .. d+replication-1 (mod N).
        std::size_t replica = config_.nodes;
        for (std::size_t r = 1; r < config_.replication; ++r) {
            const std::size_t cand = (d + r) % config_.nodes;
            if (death[cand].micros == INT64_MAX) {
                replica = cand;
                break;
            }
        }
        if (replica == config_.nodes) {
            // No surviving copy of the range: the work is lost, reported.
            report.lost_queries += left.total_queries();
            continue;
        }

        // The replica picks up the dead node's share once it has both seen
        // the death and finished its own (and any earlier recovery) work.
        const util::SimTime recovery_start = std::max(death[d], busy_until[replica]);
        workload::Workload rerun = left;
        for (workload::Job& job : rerun.jobs)
            job.arrival = std::max(job.arrival, recovery_start);
        report.requeued_queries += rerun.total_queries();

        Engine engine(node_template);
        RunReport rec = engine.run(rerun);
        ++report.failovers;
        accumulate(rec);
        const util::SimTime rec_end = rerun.jobs.front().arrival + rec.makespan;
        busy_until[replica] = rec_end;
        // Degraded makespan: the recovery tail extends the cluster span,
        // measured from the workload's first arrival.
        report.makespan = std::max(report.makespan, rec_end - global_start);
        report.recovery.push_back(std::move(rec));
    }

    const double seconds = std::max(1e-9, report.makespan.seconds());
    report.total_throughput_qps = static_cast<double>(total_parts) / seconds;
    report.mean_response_ms =
        total_parts ? weighted_rt / static_cast<double>(total_parts) : 0.0;
    report.cache_hit_rate =
        (hits + misses) ? static_cast<double>(hits) / static_cast<double>(hits + misses) : 0.0;
    if (run_seconds > 0.0) {
        report.mean_disk_utilization = weighted_disk_util / run_seconds;
        report.mean_cpu_utilization = weighted_cpu_util / run_seconds;
    }
    // Exact cluster-wide tail over the pooled samples (percentile() moves
    // the vector; NaN — "n/a" — when nothing completed anywhere).
    report.p999_response_ms = util::percentile(pooled_response_ms, 99.9);
    report.p99_response_ms = util::percentile(std::move(pooled_response_ms), 99.0);
    return report;
}

}  // namespace jaws::core
