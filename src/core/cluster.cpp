#include "core/cluster.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/engine.h"
#include "storage/replica_router.h"
#include "util/contracts.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace jaws::core {

void ClusterConfig::validate() const {
    if (nodes == 0)
        throw std::invalid_argument("ClusterConfig::validate: nodes must be positive");
    if (nodes > std::numeric_limits<util::NodeIndex::rep>::max())
        throw std::invalid_argument(
            "ClusterConfig::validate: nodes must fit util::NodeIndex (32-bit), got " +
            std::to_string(nodes));
    if (replication == 0 || replication > nodes)
        throw std::invalid_argument(
            "ClusterConfig::validate: replication must lie in [1, nodes], got " +
            std::to_string(replication) + " with " + std::to_string(nodes) + " nodes");
    std::vector<bool> downed(nodes, false);
    for (const storage::NodeDownEvent& ev : node.faults.node_down) {
        if (ev.node.value() >= nodes)
            throw std::invalid_argument(
                "ClusterConfig::validate: node.faults.node_down names node " +
                std::to_string(ev.node.value()) + " but the cluster has only " +
                std::to_string(nodes) + " nodes");
        if (ev.at <= util::SimTime::zero())
            throw std::invalid_argument(
                "ClusterConfig::validate: node.faults.node_down for node " +
                std::to_string(ev.node.value()) +
                " fires at tick 0 — a node that was never up cannot die");
        if (downed[ev.node.value()])
            throw std::invalid_argument(
                "ClusterConfig::validate: duplicate node.faults.node_down events for "
                "node " +
                std::to_string(ev.node.value()) + " — a node dies at most once per run");
        downed[ev.node.value()] = true;
    }
    node.validate();
}

TurbulenceCluster::TurbulenceCluster(const ClusterConfig& config) : config_(config) {
    config_.validate();
}

util::NodeIndex TurbulenceCluster::node_of(std::uint64_t morton,
                                           std::uint64_t atoms_per_step,
                                           std::size_t nodes) {
    if (nodes <= 1) return util::NodeIndex{0};
    const std::uint64_t per_node = (atoms_per_step + nodes - 1) / nodes;
    const std::uint64_t idx = std::min<std::uint64_t>(morton / per_node, nodes - 1);
    // validate() caps cluster node counts at the NodeIndex range; direct
    // static callers with a wider count would truncate here, so trap in
    // audit builds rather than wrap silently.
    JAWS_INVARIANT(idx <= std::numeric_limits<util::NodeIndex::rep>::max(),
                   "node_of: node index exceeds NodeIndex's 32-bit range");
    return util::NodeIndex{static_cast<std::uint32_t>(idx)};
}

std::vector<workload::Job> TurbulenceCluster::project(const workload::Job& job) const {
    const std::uint64_t aps = config_.node.grid.atoms_per_step();
    std::vector<workload::Job> projected(config_.nodes);
    for (std::size_t n = 0; n < config_.nodes; ++n) {
        projected[n].id = job.id;
        projected[n].user = job.user;
        projected[n].type = job.type;
        projected[n].arrival = job.arrival;
    }
    for (const auto& q : job.queries) {
        // Split the footprint by owning node.
        std::vector<std::vector<workload::AtomRequest>> split(config_.nodes);
        for (const auto& req : q.footprint)
            split[node_of(req.atom.morton, aps, config_.nodes).value()].push_back(req);
        for (std::size_t n = 0; n < config_.nodes; ++n) {
            if (split[n].empty()) continue;
            workload::Query part = q;
            part.footprint = std::move(split[n]);
            // Positions follow their owning node (materialised runs
            // evaluate them there); descriptor-only queries carry none.
            part.positions.clear();
            for (const auto& p : q.positions)
                if (node_of(config_.node.grid.atom_morton_of(p), aps,
                            config_.nodes).value() == n)
                    part.positions.push_back(p);
            part.seq_in_job = static_cast<std::uint32_t>(projected[n].queries.size());
            projected[n].queries.push_back(std::move(part));
        }
    }
    return projected;
}

std::vector<workload::Workload> TurbulenceCluster::partition(
    const workload::Workload& workload) const {
    std::vector<workload::Workload> parts(config_.nodes);
    for (const auto& job : workload.jobs) {
        std::vector<workload::Job> projected = project(job);
        for (std::size_t n = 0; n < config_.nodes; ++n)
            if (!projected[n].queries.empty())
                parts[n].jobs.push_back(std::move(projected[n]));
    }
    return parts;
}

namespace {

/// One node engine's result: its report plus, if it died mid-run, the share
/// it left unfinished.
struct NodeRun {
    RunReport report;
    workload::Workload leftover;
};

/// Mutex-guarded sink the parallel node engines write into. Results land in
/// per-node slots so the aggregation below reads them in node order
/// regardless of completion order; the first worker exception is rethrown
/// on take() (matching the old future-based transport).
class NodeRunCollector {
  public:
    explicit NodeRunCollector(std::size_t nodes) : runs_(nodes) {}

    void set(std::size_t node, NodeRun run) {
        util::MutexLock lock(mu_);
        runs_[node] = std::move(run);
    }

    void record_error(std::exception_ptr error) noexcept {
        util::MutexLock lock(mu_);
        if (error_ == nullptr) error_ = std::move(error);
    }

    /// Call once, after every worker has finished.
    std::vector<NodeRun> take() {
        util::MutexLock lock(mu_);
        if (error_ != nullptr) std::rethrow_exception(error_);
        return std::move(runs_);
    }

  private:
    util::Mutex mu_;
    std::vector<NodeRun> runs_ GUARDED_BY(mu_);
    std::exception_ptr error_ GUARDED_BY(mu_);
};

/// The portion of `jobs` that `outcomes` did not complete (a dead node's
/// unfinished share), with jobs re-sequenced for a replica re-run. Works
/// over any forward range of workload::Job (the legacy path passes a
/// vector, the unified kernel its stable per-node deque).
template <class JobRange>
workload::Workload unfinished_part(const JobRange& jobs,
                                   const std::vector<QueryOutcome>& outcomes) {
    std::unordered_set<workload::QueryId> done;
    done.reserve(outcomes.size());
    for (const QueryOutcome& o : outcomes) done.insert(o.query);
    workload::Workload left;
    for (const workload::Job& job : jobs) {
        workload::Job projected;
        projected.id = job.id;
        projected.user = job.user;
        projected.type = job.type;
        projected.arrival = job.arrival;
        for (const workload::Query& q : job.queries) {
            if (done.contains(q.id)) continue;
            workload::Query copy = q;
            copy.seq_in_job = static_cast<std::uint32_t>(projected.queries.size());
            projected.queries.push_back(std::move(copy));
        }
        if (!projected.queries.empty()) left.jobs.push_back(std::move(projected));
    }
    return left;
}

/// Streaming aggregation of per-run reports into a ClusterReport, shared by
/// the legacy and unified paths (weighted means, pooled tail percentiles and
/// straight fault/hedge sums).
class Aggregator {
  public:
    explicit Aggregator(ClusterReport& report) : report_(report) {}

    void accumulate(const RunReport& r) {
        total_parts_ += r.queries;
        weighted_rt_ += r.mean_response_ms * static_cast<double>(r.queries);
        hits_ += r.cache.hits;
        misses_ += r.cache.misses;
        run_seconds_ += r.makespan.seconds();
        weighted_disk_util_ += r.disk_utilization * r.makespan.seconds();
        weighted_cpu_util_ += r.cpu_utilization * r.makespan.seconds();
        report_.degraded_queries += r.degraded_queries;
        report_.read_retries += r.read_retries;
        report_.read_failures += r.read_failures;
        report_.hedges_issued += r.hedges_issued;
        report_.hedges_won += r.hedges_won;
        report_.hedges_lost += r.hedges_lost;
        report_.cancellations += r.cancellations;
        report_.wasted_service += r.wasted_service;
        report_.deadline_misses += r.deadline_misses;
        report_.retries_suppressed += r.retries_suppressed;
        pooled_response_ms_.insert(pooled_response_ms_.end(), r.response_ms.begin(),
                                   r.response_ms.end());
    }

    /// Derive the cluster-level ratios. report_.makespan must be final.
    void finalize() {
        const double seconds = std::max(1e-9, report_.makespan.seconds());
        report_.total_throughput_qps = static_cast<double>(total_parts_) / seconds;
        report_.mean_response_ms =
            total_parts_ ? weighted_rt_ / static_cast<double>(total_parts_) : 0.0;
        report_.cache_hit_rate =
            (hits_ + misses_) ? static_cast<double>(hits_) /
                                    static_cast<double>(hits_ + misses_)
                              : 0.0;
        if (run_seconds_ > 0.0) {
            report_.mean_disk_utilization = weighted_disk_util_ / run_seconds_;
            report_.mean_cpu_utilization = weighted_cpu_util_ / run_seconds_;
        }
        // Exact cluster-wide tail over the pooled samples (percentile() moves
        // the vector; NaN — "n/a" — when nothing completed anywhere).
        report_.p999_response_ms = util::percentile(pooled_response_ms_, 99.9);
        report_.p99_response_ms =
            util::percentile(std::move(pooled_response_ms_), 99.0);
    }

  private:
    ClusterReport& report_;
    std::size_t total_parts_ = 0;
    double weighted_rt_ = 0.0;
    std::uint64_t hits_ = 0, misses_ = 0;
    double run_seconds_ = 0.0;
    double weighted_disk_util_ = 0.0, weighted_cpu_util_ = 0.0;
    std::vector<double> pooled_response_ms_;
};

/// Earliest death per node (cluster-level faults ride in the node template's
/// FaultSpec; SimTime::max() = the node survives the run).
std::vector<util::SimTime> death_schedule(const ClusterConfig& config) {
    std::vector<util::SimTime> death(config.nodes, util::SimTime::max());
    for (const storage::NodeDownEvent& ev : config.node.faults.node_down)
        if (ev.at < death[ev.node.value()]) death[ev.node.value()] = ev.at;
    return death;
}

/// One evaluation pool shared across every node engine (and, on the legacy
/// path, recovery run): real interpolation from all nodes multiplexes onto a
/// single set of worker threads instead of each engine spawning
/// nodes × workers of its own. Returns null (and leaves the template
/// untouched) on descriptor-only runs or when the caller supplied a pool.
std::unique_ptr<util::ThreadPool> make_shared_eval(EngineConfig& node_template) {
    if (node_template.eval.pool != nullptr || !node_template.eval.parallel ||
        !node_template.materialize_data)
        return nullptr;
    auto pool = std::make_unique<util::ThreadPool>(
        node_template.eval.threads != 0 ? node_template.eval.threads
                                        : node_template.compute_workers);
    node_template.eval.pool = pool.get();
    return pool;
}

/// The unified cluster kernel: N node engines sharing one EventQueue, with
/// arrivals routed to owning nodes at event time, replica-aware demand/hedge
/// read routing (this class is the engines' storage::ReplicaRouter) and
/// in-kernel failover — a dead node's unfinished share is re-injected into a
/// surviving replica the instant the dead node drains its final batch, where
/// it contends for the survivor's modeled disk and CPU.
class UnifiedKernel final : public storage::ReplicaRouter {
  public:
    UnifiedKernel(const TurbulenceCluster& cluster, const ClusterConfig& config,
                  const EngineConfig& node_template, std::vector<util::SimTime> death)
        : cluster_(cluster),
          config_(config),
          node_template_(node_template),
          death_(std::move(death)),
          aps_(config.node.grid.atoms_per_step()),
          cluster_src_(static_cast<std::uint32_t>(config.nodes)) {}

    ClusterReport run(const workload::Workload& workload) {
        origin_ = workload.jobs.empty() ? util::SimTime::zero()
                                        : workload.jobs.front().arrival;
        events_.set_perturbation(node_template_.tie_perturbation);
        events_.reset_to(origin_);

        routed_.resize(config_.nodes);
        arrivals_remaining_.assign(config_.nodes, 0);
        first_injection_.assign(config_.nodes, util::SimTime::max());
        failed_over_.assign(config_.nodes, false);
        engines_.reserve(config_.nodes);
        for (std::size_t n = 0; n < config_.nodes; ++n) {
            EngineConfig cfg = node_template_;
            cfg.halt_at = death_[n];
            engines_.push_back(std::make_unique<Engine>(
                cfg, events_, util::NodeIndex{static_cast<std::uint32_t>(n)}));
            engines_.back()->set_replica_router(this);
        }
        for (std::size_t n = 0; n < config_.nodes; ++n) {
            engines_[n]->begin_shared(origin_);
            engines_[n]->set_halt_drained([this, n] { fail_over(n); });
        }

        // Failover re-injections become new work on the survivor, so they
        // need job/query ids no live runtime entry is using.
        for (const workload::Job& job : workload.jobs) {
            next_job_id_ = std::max(next_job_id_, job.id + 1);
            for (const workload::Query& q : job.queries)
                next_query_id_ = std::max(next_query_id_, q.id + 1);
        }

        plan_arrivals(workload);
        pump();
        return harvest();
    }

    // --- storage::ReplicaRouter -----------------------------------------
    storage::ReadRoute route_read(util::NodeIndex self,
                                  const storage::AtomId& atom) override {
        const std::size_t owner =
            TurbulenceCluster::node_of(atom.morton, aps_, config_.nodes).value();
        if (death_[owner] > events_.now()) {
            // Owner alive: keep the read local unless a chain member is
            // meaningfully shallower. Morton-adjacent reads on the owner's
            // own head are nearly free (DiskSpec's seek model), so a
            // diversion must buy at least kDivertMargin queue slots to pay
            // for the full seek it forces on the replica's head.
            const std::size_t best = pick_replica(owner, owner);
            if (best != config_.nodes &&
                engines_[best]->disk_load() + kDivertMargin <=
                    engines_[owner]->disk_load())
                return route_to(best);
            return route_to(owner);
        }
        const std::size_t best = pick_replica(owner, config_.nodes);
        return route_to(best != config_.nodes ? best : self.value());
    }

    storage::ReadRoute route_hedge(util::NodeIndex self, const storage::AtomId& atom,
                                   util::NodeIndex primary) override {
        (void)self;
        const std::size_t owner =
            TurbulenceCluster::node_of(atom.morton, aps_, config_.nodes).value();
        // Prefer independent hardware: any surviving replica that is not the
        // primary; with none, the hedge rides another channel of the
        // primary's own disk (single-node hedging, PR 6).
        const std::size_t best = pick_replica(owner, primary.value());
        return route_to(best != config_.nodes ? best : primary.value());
    }

    std::size_t read_concurrency(util::NodeIndex self) const override {
        // Surviving members of self's own range's chain — the disks a read
        // for an atom this node owns may land on right now.
        const util::SimTime now = events_.now();
        std::size_t alive = 0;
        for (std::size_t r = 0; r < config_.replication; ++r)
            if (death_[(self.value() + r) % config_.nodes] > now) ++alive;
        return alive > 0 ? alive : 1;
    }

  private:
    /// Queue-depth advantage a replica must offer before a demand read is
    /// diverted off a live owner: diverting breaks the sequential run the
    /// Morton layout exists to create, so near-balanced chains stay local.
    static constexpr std::size_t kDivertMargin = 2;

    /// Surviving member of `owner`'s replica chain with the shallowest
    /// modeled disk queue (ties break in chain order, so a balanced chain
    /// keeps reads owner-local). `exclude` skips one node (the hedge's
    /// primary, or the owner itself for the live-owner divert check); pass
    /// config_.nodes to consider the whole chain. Returns config_.nodes when
    /// no eligible replica survives.
    std::size_t pick_replica(std::size_t owner, std::size_t exclude) const {
        const util::SimTime now = events_.now();
        std::size_t best = config_.nodes;
        for (std::size_t r = 0; r < config_.replication; ++r) {
            const std::size_t cand = (owner + r) % config_.nodes;
            if (cand == exclude) continue;
            if (death_[cand] <= now) continue;  // dead (halt fires first)
            if (best == config_.nodes ||
                engines_[cand]->disk_load() < engines_[best]->disk_load())
                best = cand;
        }
        return best;
    }

    storage::ReadRoute route_to(std::size_t node) {
        Engine& e = *engines_[node];
        return storage::ReadRoute{&e.store(), &e.disk_resource(),
                                  util::NodeIndex{static_cast<std::uint32_t>(node)}};
    }

    /// Give a re-routed job part fresh job/query ids: the survivor may hold
    /// (or have completed) its own part of the same original job, and engine
    /// bookkeeping is keyed by those ids.
    void remap_ids(workload::Job& job) {
        job.id = next_job_id_++;
        for (workload::Query& q : job.queries) {
            q.id = next_query_id_++;
            q.job = job.id;
        }
    }

    /// Route every job part to its arrival-time target and schedule one
    /// cluster arrival event per part. The death schedule is static, so the
    /// target is known now: the owner if it is still alive at the arrival,
    /// else the first replica alive at the arrival, else the part is lost.
    void plan_arrivals(const workload::Workload& workload) {
        for (const workload::Job& job : workload.jobs) {
            std::vector<workload::Job> parts = cluster_.project(job);
            for (std::size_t n = 0; n < parts.size(); ++n) {
                if (parts[n].queries.empty()) continue;
                const std::size_t target = arrival_target(n, job.arrival);
                if (target == config_.nodes) {
                    report_.lost_queries += parts[n].queries.size();
                    continue;
                }
                workload::Job& stored = routed_[target].emplace_back(std::move(parts[n]));
                if (target != n) {
                    ++report_.rerouted_arrivals;
                    report_.requeued_queries += stored.queries.size();
                    failed_over_[n] = true;  // a replica picked up dead n's work
                    remap_ids(stored);
                }
                report_.routed_queries += stored.queries.size();
                ++arrivals_remaining_[target];
                const std::uint32_t tgt = static_cast<std::uint32_t>(target);
                workload::Job* part = &stored;
                events_.schedule(job.arrival, Engine::kPriArrival, cluster_src_,
                                 [this, tgt, part] {
                                     --arrivals_remaining_[tgt];
                                     if (first_injection_[tgt] == util::SimTime::max())
                                         first_injection_[tgt] = events_.now();
                                     engines_[tgt]->inject_job(*part);
                                 });
            }
        }
    }

    std::size_t arrival_target(std::size_t owner, util::SimTime arrival) const {
        // At arrival == death the halt has already fired (kPriHalt orders
        // before kPriArrival), so "alive" is strict.
        if (death_[owner] > arrival) return owner;
        for (std::size_t r = 1; r < config_.replication; ++r) {
            const std::size_t cand = (owner + r) % config_.nodes;
            if (death_[cand] > arrival) return cand;
        }
        return config_.nodes;
    }

    /// Halt-drained hook of node `d` (its in-flight batch at the death
    /// instant has completed): re-inject its unfinished share into the
    /// surviving replica with the shallowest disk queue, in-line at the
    /// current virtual instant.
    void fail_over(std::size_t d) {
        workload::Workload left = unfinished_part(routed_[d], engines_[d]->outcomes());
        if (left.jobs.empty()) return;
        const std::size_t target = pick_replica(d, d);
        if (target == config_.nodes) {
            report_.lost_queries += left.total_queries();
            return;
        }
        failed_over_[d] = true;
        report_.requeued_queries += left.total_queries();
        const util::SimTime now = events_.now();
        for (workload::Job& job : left.jobs) {
            job.arrival = now;
            remap_ids(job);
            workload::Job& stored = routed_[target].emplace_back(std::move(job));
            engines_[target]->inject_job(stored);
        }
    }

    /// Drive the shared queue. After each event, the node it belonged to may
    /// have gone quiescent with only scheduler-gated queries left — the
    /// exact state where a standalone engine's drained queue triggers an
    /// unstick — which here is visible as "no pending events of this source
    /// and no arrivals still headed its way".
    void pump() {
        for (;;) {
            if (events_.run_one()) {
                const std::uint32_t src = events_.last_source();
                if (src < engines_.size()) maybe_unstick(src);
                continue;
            }
            // Queue drained: force-release any gated stragglers (failover
            // injections can leave several nodes stuck at the same instant).
            bool progressed = false;
            for (auto& e : engines_)
                if (e->idle_stuck() && e->try_unstick()) progressed = true;
            if (!progressed) break;
        }
        for (std::size_t n = 0; n < engines_.size(); ++n) {
            const Engine& e = *engines_[n];
            if (e.started() && !e.halted() && !e.done())
                throw std::runtime_error(
                    "TurbulenceCluster: unified kernel stalled on node " +
                    std::to_string(n) + " with " + std::to_string(e.completed()) +
                    "/" + std::to_string(e.expected()) + " query parts complete");
        }
    }

    void maybe_unstick(std::uint32_t src) {
        Engine& e = *engines_[src];
        if (!e.idle_stuck()) return;
        if (arrivals_remaining_[src] != 0) return;
        if (events_.pending_for(src) != 0) return;
        // A failed unstick is not yet a stall: another node's failover may
        // still inject work that wakes this one; pump() has the final word.
        e.try_unstick();
    }

    ClusterReport harvest() {
        for (std::size_t d = 0; d < config_.nodes; ++d) {
            if (death_[d] != util::SimTime::max()) ++report_.dead_nodes;
            if (failed_over_[d]) ++report_.failovers;
        }
        Aggregator agg(report_);
        for (std::size_t n = 0; n < config_.nodes; ++n) {
            RunReport r = engines_[n]->finish();
            report_.makespan = std::max(report_.makespan, r.makespan);
            report_.replica_reads += r.replica_reads;
            agg.accumulate(r);
            report_.per_node.push_back(std::move(r));
        }
        // Re-routed work extends the cluster span measured from the global
        // origin (a survivor that started late can end past every per-node
        // makespan); without failover the slowest node's own makespan is the
        // cluster's, exactly as on the legacy path.
        if (report_.failovers > 0 || report_.rerouted_arrivals > 0)
            for (std::size_t n = 0; n < config_.nodes; ++n)
                if (first_injection_[n] != util::SimTime::max())
                    report_.makespan =
                        std::max(report_.makespan, first_injection_[n] +
                                                       report_.per_node[n].makespan -
                                                       origin_);
        merge_timeline();
        agg.finalize();
        return std::move(report_);
    }

    /// Merge the per-node timelines (their windows are aligned: begin_shared
    /// pinned every node's window origin to the cluster origin): completions
    /// and backlog sum, response is completion-weighted, the remaining
    /// signals average over the nodes that reported the window.
    void merge_timeline() {
        if (config_.node.timeline_window_s <= 0.0) return;
        std::map<std::int64_t, TimelinePoint> merged;
        std::map<std::int64_t, std::size_t> contributors;
        for (const RunReport& r : report_.per_node)
            for (const TimelinePoint& tp : r.timeline) {
                TimelinePoint& m = merged[tp.window_end.raw_micros()];
                m.window_end = tp.window_end;
                m.completions += tp.completions;
                m.mean_response_ms +=
                    tp.mean_response_ms * static_cast<double>(tp.completions);
                m.backlog_subqueries += tp.backlog_subqueries;
                m.alpha += tp.alpha;
                m.cache_hit_rate += tp.cache_hit_rate;
                m.disk_utilization += tp.disk_utilization;
                m.cpu_utilization += tp.cpu_utilization;
                m.overlap_fraction += tp.overlap_fraction;
                ++contributors[tp.window_end.raw_micros()];
            }
        report_.timeline.reserve(merged.size());
        for (auto& [micros, m] : merged) {
            const double reporting = static_cast<double>(contributors[micros]);
            m.mean_response_ms = m.completions > 0
                                     ? m.mean_response_ms /
                                           static_cast<double>(m.completions)
                                     : 0.0;
            m.alpha /= reporting;
            m.cache_hit_rate /= reporting;
            m.disk_utilization /= reporting;
            m.cpu_utilization /= reporting;
            m.overlap_fraction /= reporting;
            report_.timeline.push_back(m);
        }
    }

    const TurbulenceCluster& cluster_;
    const ClusterConfig& config_;
    EngineConfig node_template_;
    std::vector<util::SimTime> death_;
    const std::uint64_t aps_;
    const std::uint32_t cluster_src_;  ///< Event source id of routing events.

    util::SimTime origin_;
    util::EventQueue events_;
    /// Stable storage of every injected job (engines keep pointers into
    /// these for the whole run; deque never relocates on push_back).
    std::vector<std::deque<workload::Job>> routed_;
    std::vector<std::unique_ptr<Engine>> engines_;
    std::vector<std::size_t> arrivals_remaining_;  ///< Unfired arrivals per node.
    std::vector<util::SimTime> first_injection_;   ///< Node makespan origins.
    std::vector<bool> failed_over_;  ///< A replica picked up this node's work.
    workload::JobId next_job_id_ = 0;
    workload::QueryId next_query_id_ = 0;
    ClusterReport report_;
};

}  // namespace

ClusterReport TurbulenceCluster::run(const workload::Workload& workload) const {
    return config_.mode == ClusterMode::kLegacy ? run_legacy(workload)
                                                : run_unified(workload);
}

ClusterReport TurbulenceCluster::run_unified(const workload::Workload& workload) const {
    EngineConfig node_template = config_.node;
    const std::unique_ptr<util::ThreadPool> shared_eval =
        make_shared_eval(node_template);
    UnifiedKernel kernel(*this, config_, node_template, death_schedule(config_));
    return kernel.run(workload);
}

ClusterReport TurbulenceCluster::run_legacy(const workload::Workload& workload) const {
    const std::vector<workload::Workload> parts = partition(workload);
    const std::vector<util::SimTime> death = death_schedule(config_);

    EngineConfig node_template = config_.node;
    const std::unique_ptr<util::ThreadPool> shared_eval =
        make_shared_eval(node_template);

    util::ThreadPool pool(std::min<std::size_t>(config_.nodes, 8));
    NodeRunCollector collector(parts.size());
    for (std::size_t n = 0; n < parts.size(); ++n) {
        pool.submit([&parts, &death, &collector, &node_template, n] {
            try {
                NodeRun out;
                const workload::Workload& part = parts[n];
                if (!part.jobs.empty()) {
                    EngineConfig cfg = node_template;
                    cfg.halt_at = death[n];
                    Engine engine(cfg);
                    out.report = engine.run(part);
                    if (out.report.halted)
                        out.leftover = unfinished_part(part.jobs, engine.outcomes());
                }
                collector.set(n, std::move(out));
            } catch (...) {
                collector.record_error(std::current_exception());
            }
        });
    }
    pool.wait_idle();
    std::vector<NodeRun> node_runs = collector.take();

    ClusterReport report;
    Aggregator agg(report);

    // When a node dies its share finishes on a replica; the replica can only
    // start the re-run once it has drained its own share, so track each
    // node's busy-until time (in the shared virtual timeline).
    std::vector<util::SimTime> busy_until(config_.nodes, util::SimTime::zero());
    std::vector<workload::Workload> leftovers(config_.nodes);
    for (std::size_t n = 0; n < node_runs.size(); ++n) {
        NodeRun run = std::move(node_runs[n]);
        report.makespan = std::max(report.makespan, run.report.makespan);
        agg.accumulate(run.report);
        if (!parts[n].jobs.empty())
            busy_until[n] = parts[n].jobs.front().arrival + run.report.makespan;
        report.per_node.push_back(std::move(run.report));
        leftovers[n] = std::move(run.leftover);
    }

    const util::SimTime global_start =
        workload.jobs.empty() ? util::SimTime::zero() : workload.jobs.front().arrival;
    for (std::size_t d = 0; d < config_.nodes; ++d) {
        if (death[d] == util::SimTime::max()) continue;
        ++report.dead_nodes;
        const workload::Workload& left = leftovers[d];
        if (left.jobs.empty()) continue;  // died with nothing outstanding

        // First surviving holder of d's Morton range under chained
        // declustering: nodes d+1 .. d+replication-1 (mod N).
        std::size_t replica = config_.nodes;
        for (std::size_t r = 1; r < config_.replication; ++r) {
            const std::size_t cand = (d + r) % config_.nodes;
            if (death[cand] == util::SimTime::max()) {
                replica = cand;
                break;
            }
        }
        if (replica == config_.nodes) {
            // No surviving copy of the range: the work is lost, reported.
            report.lost_queries += left.total_queries();
            continue;
        }

        // The replica picks up the dead node's share once it has both seen
        // the death and finished its own (and any earlier recovery) work.
        const util::SimTime recovery_start = std::max(death[d], busy_until[replica]);
        workload::Workload rerun = left;
        for (workload::Job& job : rerun.jobs)
            job.arrival = std::max(job.arrival, recovery_start);
        report.requeued_queries += rerun.total_queries();

        Engine engine(node_template);
        RunReport rec = engine.run(rerun);
        ++report.failovers;
        agg.accumulate(rec);
        const util::SimTime rec_end = rerun.jobs.front().arrival + rec.makespan;
        busy_until[replica] = rec_end;
        // Degraded makespan: the recovery tail extends the cluster span,
        // measured from the workload's first arrival.
        report.makespan = std::max(report.makespan, rec_end - global_start);
        report.recovery.push_back(std::move(rec));
    }

    agg.finalize();
    return report;
}

}  // namespace jaws::core
