#include "core/config.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace jaws::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("EngineConfig::validate: " + what);
}

void require_probability(double p, const char* name) {
    if (!(p >= 0.0 && p <= 1.0))
        fail(std::string(name) + " must lie in [0, 1], got " + std::to_string(p));
}

void require_non_negative(double v, const char* name) {
    // !(>= 0) also rejects NaN; the explicit finiteness check rejects +inf,
    // which would otherwise flow into virtual-time conversions and saturate
    // the clock (found by fuzz/fuzz_config.cpp).
    if (!(v >= 0.0) || !std::isfinite(v))
        fail(std::string(name) + " must be finite and non-negative, got " +
             std::to_string(v));
}

void require_finite(double v, const char* name) {
    if (!std::isfinite(v))
        fail(std::string(name) + " must be finite, got " + std::to_string(v));
}

}  // namespace

void EngineConfig::validate() const {
    if (grid.atom_side == 0) fail("grid.atom_side must be positive");
    if (grid.voxels_per_side == 0) fail("grid.voxels_per_side must be positive");
    if (grid.voxels_per_side % grid.atom_side != 0)
        fail("grid.atom_side " + std::to_string(grid.atom_side) +
             " does not divide grid.voxels_per_side " +
             std::to_string(grid.voxels_per_side) +
             " (atoms must tile the grid exactly)");
    if (grid.timesteps == 0) fail("grid.timesteps must be positive");
    if (cache.capacity_atoms == 0)
        fail("cache.capacity_atoms must be positive (a node cannot run without "
             "buffer memory)");

    if (io_depth == 0)
        fail("io_depth must be at least 1 (one disk service channel)");
    if (compute_workers == 0)
        fail("compute_workers must be at least 1 (one evaluation server)");
    if (io_depth > 1024 || compute_workers > 1024)
        fail("io_depth/compute_workers above 1024 is outside the model's regime");
    if (eval.threads > 1024)
        fail("eval.threads above 1024 is outside the model's regime");

    require_non_negative(disk.settle_ms, "disk.settle_ms");
    require_non_negative(disk.seek_full_stroke_ms, "disk.seek_full_stroke_ms");
    if (!(disk.transfer_mb_per_s > 0.0) || !std::isfinite(disk.transfer_mb_per_s))
        fail("disk.transfer_mb_per_s must be finite and positive, got " +
             std::to_string(disk.transfer_mb_per_s));
    require_non_negative(compute.t_m_us, "compute.t_m_us");
    require_non_negative(estimates.t_b_ms, "estimates.t_b_ms");
    require_non_negative(estimates.t_m_ms, "estimates.t_m_ms");
    require_non_negative(dispatch_overhead_ms, "dispatch_overhead_ms");
    require_non_negative(support_read_fraction, "support_read_fraction");
    require_non_negative(timeline_window_s, "timeline_window_s");

    if (scheduler.kind == SchedulerKind::kLifeRaft)
        require_probability(scheduler.liferaft_alpha, "scheduler.liferaft_alpha");
    if (scheduler.kind == SchedulerKind::kJaws) {
        if (scheduler.jaws.batch_size_k == 0)
            fail("scheduler.jaws.batch_size_k must be positive");
        require_probability(scheduler.jaws.alpha.initial_alpha,
                            "scheduler.jaws.alpha.initial_alpha");
        if (scheduler.jaws.qos.enabled) {
            require_non_negative(scheduler.jaws.qos.slack_factor,
                                 "scheduler.jaws.qos.slack_factor");
            require_non_negative(scheduler.jaws.qos.margin_ms,
                                 "scheduler.jaws.qos.margin_ms");
        }
    }

    require_probability(faults.transient_error_rate, "faults.transient_error_rate");
    require_probability(faults.latency_spike_rate, "faults.latency_spike_rate");
    require_non_negative(faults.latency_spike_mean_ms, "faults.latency_spike_mean_ms");
    require_probability(faults.stuck_read_rate, "faults.stuck_read_rate");
    require_non_negative(faults.stuck_read_ms, "faults.stuck_read_ms");
    for (const storage::BadRange& r : faults.bad_ranges)
        if (r.morton_end < r.morton_begin)
            fail("faults.bad_ranges entry has morton_end < morton_begin");
    if (retry.max_attempts == 0)
        fail("retry.max_attempts must be at least 1 (the initial attempt)");
    require_non_negative(retry.backoff_base_ms, "retry.backoff_base_ms");
    require_non_negative(retry.backoff_cap_ms, "retry.backoff_cap_ms");
    if (!(retry.backoff_multiplier >= 1.0) || !std::isfinite(retry.backoff_multiplier))
        fail("retry.backoff_multiplier must be finite and >= 1, got " +
             std::to_string(retry.backoff_multiplier));
    if (retry.backoff_cap_ms < retry.backoff_base_ms)
        fail("retry.backoff_cap_ms " + std::to_string(retry.backoff_cap_ms) +
             " is below retry.backoff_base_ms " +
             std::to_string(retry.backoff_base_ms) +
             " (the cap would silently invert the backoff schedule)");

    require_probability(disk.heavy_tail.rate, "disk.heavy_tail.rate");
    require_non_negative(disk.heavy_tail.lognormal_sigma,
                         "disk.heavy_tail.lognormal_sigma");
    if (disk.heavy_tail.rate > 0.0) {
        require_finite(disk.heavy_tail.lognormal_mu, "disk.heavy_tail.lognormal_mu");
        if (!(disk.heavy_tail.pareto_alpha > 0.0) ||
            !std::isfinite(disk.heavy_tail.pareto_alpha))
            fail("disk.heavy_tail.pareto_alpha must be finite and positive, got " +
                 std::to_string(disk.heavy_tail.pareto_alpha));
        if (!(disk.heavy_tail.pareto_min >= 1.0) ||
            !std::isfinite(disk.heavy_tail.pareto_min))
            fail("disk.heavy_tail.pareto_min must be finite and >= 1 (a slowdown), "
                 "got " +
                 std::to_string(disk.heavy_tail.pareto_min));
    }

    require_non_negative(hedge.trigger_ms, "hedge.trigger_ms");
    if (hedge.enabled) {
        if (!(hedge.trigger_ewma_multiplier > 0.0) ||
            !std::isfinite(hedge.trigger_ewma_multiplier))
            fail("hedge.trigger_ewma_multiplier must be finite and positive, got " +
                 std::to_string(hedge.trigger_ewma_multiplier));
        if (!(hedge.ewma_alpha > 0.0 && hedge.ewma_alpha <= 1.0))
            fail("hedge.ewma_alpha must lie in (0, 1], got " +
                 std::to_string(hedge.ewma_alpha));
        if (hedge.max_outstanding == 0)
            fail("hedge.max_outstanding must be at least 1 when hedging is enabled");
        if (hedge.budget_per_query == 0)
            fail("hedge.budget_per_query must be at least 1 when hedging is enabled");
    }
    require_non_negative(deadline_budget_ms, "deadline_budget_ms");
}

}  // namespace jaws::core
