// The JAWS engine: one database node's full stack (paper Fig. 7).
//
// Wires the query pre-processor, workload manager/scheduler, buffer cache and
// atom store together and drives a workload to completion on a discrete-event
// kernel (util::EventQueue). The engine models the node as two queued
// resources: a disk with `EngineConfig::io_depth` service channels and a CPU
// pool with `EngineConfig::compute_workers` workers. Demand reads, retry
// backoffs, batch evaluation, query arrivals and visibility events are all
// events on one deterministic queue, so I/O genuinely overlaps compute: while
// one batch item's sub-queries evaluate on the CPU pool, the next items' atom
// reads proceed on the disk channels (the paper's production behaviour — a
// SQL Server node over a RAID stripe set — rather than a strictly serial
// read-then-evaluate loop).
//
// With io_depth = 1 and compute_workers = 1 the pipeline window forces the
// exact historical serial order (read, evaluate, next read), reproducing the
// pre-kernel engine's reports bit-for-bit (see tests/serial_equivalence_test).
//
// Real-thread evaluation (EvalSpec): on materialised runs the engine
// dispatches each sub-query's actual interpolation onto a util::ThreadPool
// when its modeled T_m service *starts* and joins the result when the modeled
// service *completes*. The modeled CPU channels stay authoritative for
// virtual time — the pool only changes wall-clock time — and results are
// reduced strictly in virtual completion-event order, so the trace, the
// RunReport and every sample digest are bit-identical to inline evaluation
// for any worker count (tests/parallel_equivalence_test). At most
// `compute_workers` pool tasks are in flight, because each one is owned by an
// in-service modeled channel.
//
// Ordered jobs' data dependencies are enforced here — a query becomes
// *visible* to the scheduler only when its predecessor has completed and the
// user's think time has elapsed, exactly the dynamics of a live
// particle-tracking experiment.
//
// Shared-kernel mode (the unified cluster): an engine can alternatively be
// constructed over an *external* EventQueue with a node id. All of its
// events and resource completions are then tagged with that id (the queue's
// cross-node tie-break), jobs are injected by the cluster kernel at arrival
// events instead of being scheduled up front, and demand/hedge reads may be
// routed to another node's store and disk through a storage::ReplicaRouter.
// The begin_shared()/inject_job()/finish() lifecycle replaces run(); with no
// router and a private queue the two modes are bit-identical.
//
// An Engine instance executes one workload once; construct a fresh engine
// per experimental configuration (they are cheap — the dataset is lazy).
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cache/buffer_cache.h"
#include "core/config.h"
#include "core/metrics.h"
#include "sched/scheduler.h"
#include "storage/atom_store.h"
#include "storage/database_node.h"
#include "storage/replica_router.h"
#include "util/event_queue.h"
#include "util/sim_time.h"
#include "util/typed_id.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "workload/job.h"

namespace jaws::core {

/// Single-node engine.
class Engine {
  public:
    /// Same-instant event ordering (EventQueue priority classes): a node
    /// death fires before anything else at its instant; resource completions
    /// and retries come before new arrivals; arrivals before visibility
    /// wake-ups; and the (deduplicated) dispatch pass runs last, once the
    /// instant's admissions have all been buffered. Public because the
    /// unified cluster kernel schedules its routing and death events in the
    /// same classes.
    static constexpr int kPriHalt = 0;
    static constexpr int kPriService = 1;
    static constexpr int kPriArrival = 2;
    static constexpr int kPriVisibility = 3;
    static constexpr int kPriDispatch = 4;

    explicit Engine(const EngineConfig& config);

    /// Shared-kernel construction: the engine schedules everything on
    /// `events` (which it does not own) tagged with source `node_id`, and
    /// runs through the begin_shared()/inject_job()/finish() lifecycle
    /// driven by the cluster kernel instead of run().
    Engine(const EngineConfig& config, util::EventQueue& events,
           util::NodeIndex node_id);

    /// Execute `workload` to completion and report. The workload must have
    /// jobs sorted by arrival time (the generator guarantees it). May be
    /// called once per engine.
    RunReport run(const workload::Workload& workload);

    // --- shared-kernel lifecycle (unified cluster) -----------------------
    /// Arm this node on the shared queue: schedules the halt (node-death)
    /// event from EngineConfig::halt_at and pins the timeline-window origin
    /// to `origin` so every node's windows align for cluster merging. The
    /// node's own clock (makespan origin) starts at its first injected job,
    /// exactly like a standalone run over its partition.
    void begin_shared(util::SimTime origin);
    /// Deliver a job arriving at the current virtual instant. `job` must
    /// outlive the run. Grows the expected-query count; admission and
    /// dispatch follow the same event sequence as a scheduled arrival.
    void inject_job(const workload::Job& job);
    /// Settle accounting and build this node's report. Call once, after the
    /// shared queue has drained. A node that never received a job reports
    /// an empty (default) RunReport.
    RunReport finish();

    /// Whether every query injected so far has completed.
    bool done() const noexcept { return completed_ >= expected_; }
    /// Whether the clock started (a first job was injected / run() began).
    bool started() const noexcept { return clock_started_; }
    /// Whether the node-death halt fired.
    bool halted() const noexcept { return halted_; }
    /// Whether the node is quiescent between batches with queries pending —
    /// the only state where a drained event queue implies a scheduler gate
    /// (vs. waiting on another node's resource completions).
    bool idle_stuck() const noexcept {
        return clock_started_ && !halted_ && completed_ < expected_ && batch_ == nullptr;
    }
    /// Ask the scheduler to force-release gated queries and redispatch.
    /// Returns whether anything was released.
    bool try_unstick();
    /// Callback fired once when the node halts with no batch in flight (its
    /// in-flight batch at the death instant is allowed to complete first) —
    /// the cluster kernel's failover hook.
    void set_halt_drained(std::function<void()> fn) { halt_drained_ = std::move(fn); }
    /// Cross-node read routing; null (the default) serves every read locally.
    void set_replica_router(storage::ReplicaRouter* router) { router_ = router; }

    std::size_t completed() const noexcept { return completed_; }
    std::size_t expected() const noexcept { return expected_; }
    util::NodeIndex node_id() const noexcept { return node_id_; }
    /// Modeled disk-queue depth (in-service + waiting), the router's
    /// shallowest-replica metric.
    std::size_t disk_load() const noexcept {
        return disk_res_.busy_channels() + disk_res_.queued();
    }
    /// The modeled disk this node's reads contend on (replica read target).
    util::SimResource& disk_resource() noexcept { return disk_res_; }

    /// Per-query completion records of the finished run (for distribution
    /// plots and tests). Valid after run().
    const std::vector<QueryOutcome>& outcomes() const noexcept { return outcomes_; }

    /// Component access (tests, examples).
    const cache::BufferCache& buffer_cache() const noexcept { return *cache_; }
    storage::AtomStore& store() noexcept { return store_; }
    sched::Scheduler& scheduler() noexcept { return *scheduler_; }

  private:
    Engine(const EngineConfig& config, util::EventQueue* shared_events,
           util::NodeIndex node_id);

    /// Oracle that forwards to the scheduler's workload manager once both
    /// exist (breaks the cache <-> scheduler construction cycle).
    class OracleRelay final : public cache::UtilityOracle {
      public:
        void set(const cache::UtilityOracle* target) noexcept { target_ = target; }
        double atom_utility(const storage::AtomId& atom) const override {
            return target_ != nullptr ? target_->atom_utility(atom) : 0.0;
        }
        double timestep_mean_utility(std::uint32_t t) const override {
            return target_ != nullptr ? target_->timestep_mean_utility(t) : 0.0;
        }

      private:
        const cache::UtilityOracle* target_ = nullptr;
    };

    struct QueryRuntime {
        const workload::Query* query = nullptr;
        const workload::Job* job = nullptr;
        std::size_t outstanding = 0;  ///< Sub-queries not yet executed.
        std::uint64_t failed = 0;     ///< Sub-queries abandoned on dead atoms.
        bool visible = false;
        util::SimTime visible_at;
        std::uint64_t samples_evaluated = 0;  ///< Interpolated samples so far.
        std::uint64_t sample_digest = kFnvOffset;  ///< FNV-1a over their bytes.
        std::uint64_t hedges = 0;     ///< Hedge reads charged to this query.
        bool deadline_missed = false; ///< Exhausted its deadline budget.
    };

    struct VisibilityEvent {
        util::SimTime at;
        workload::QueryId query;

        bool operator>(const VisibilityEvent& o) const noexcept {
            return at == o.at ? query > o.query : at > o.at;
        }
    };

    /// Execution state of one batch item as it flows through the pipeline:
    /// demand read (with retries) -> kernel-support read -> per-sub-query
    /// evaluation on the CPU pool.
    struct ItemRun {
        sched::BatchItem item;
        std::size_t attempt = 1;       ///< Demand-read attempts so far.
        double backoff_ms = 0.0;       ///< Next retry delay (pre-cap).
        storage::ReadResult read;      ///< Stashed by the disk job's on_start.
        storage::ReadRoute read_route;   ///< Where the primary read is served.
        storage::ReadRoute hedge_route;  ///< Where the hedge read is served.
        std::shared_ptr<const field::VoxelBlock> payload;
        std::size_t next_sub = 0;      ///< Next sub-query to evaluate.
        // Hedging state (all zero/idle unless HedgeSpec::enabled). The demand
        // phase is active while read_job or retry_event is live; the trigger
        // and hedge are settled — cancelled or resolved — on every exit from
        // that phase, so none of these can dangle into evaluation.
        util::SimResource::JobId read_job = 0;       ///< Outstanding primary read.
        util::EventQueue::EventId retry_event = 0;   ///< Pending backoff wake-up.
        util::EventQueue::EventId hedge_trigger = 0; ///< Pending hedge trigger.
        util::SimResource::JobId hedge_job = 0;      ///< Outstanding hedge read.
        storage::ReadResult hedge_read;  ///< Stashed by the hedge's on_start.
        // Per-event staging for the current sub-query's real evaluation:
        // exactly one of these carries the result between the modeled
        // service's on_start and compute_done()'s reduction step.
        bool eval_on_pool = false;     ///< Result pending on the eval pool.
        std::future<storage::ExecOutcome> pending_eval;  ///< Pool-side result.
        storage::ExecOutcome staged_eval;  ///< Inline-evaluated result.
    };

    /// One scheduler batch in flight. Items are issued into the pipeline in
    /// batch order; at most io_depth items are in flight (issued but not yet
    /// compute-complete) at once, so io_depth = 1 degenerates to the strict
    /// serial order of the pre-kernel engine.
    struct ActiveBatch {
        std::vector<ItemRun> items;
        std::size_t next_issue = 0;
        std::size_t finished = 0;
        std::size_t in_flight = 0;
    };

    std::unique_ptr<cache::ReplacementPolicy> make_policy();
    std::unique_ptr<sched::Scheduler> make_scheduler();

    // --- admission (arrivals and visibility) ----------------------------
    /// With materialised data the interpolation kernel must fit inside an
    /// atom's ghost region (the descriptor-only path models spill as support
    /// reads; the real data path cannot). Throws std::invalid_argument
    /// naming grid.ghost and the offending order instead of reading out of
    /// bounds. No-op when materialize_data is off.
    void require_kernel_fit(const workload::Job& job) const;
    void submit_job(const workload::Job& job);
    void make_visible(workload::QueryId id);
    /// Record a future visibility event and schedule a kernel wake-up for it
    /// (due events are admitted by the next dispatch pass instead).
    void push_visibility(util::SimTime at, workload::QueryId id);
    /// Admit every job and visibility event due at the current virtual time,
    /// in the pre-kernel engine's order: buffered arrivals first (which may
    /// push fresh visibility events), then the visibility queue by (at, id).
    void admit_due();
    /// Schedule a dispatch pass at the current instant (deduplicated).
    void ensure_dispatch();
    void on_dispatch();

    // --- batch pipeline --------------------------------------------------
    void start_batch(std::vector<sched::BatchItem> items);
    /// Issue batch items into the pipeline while the in-flight window
    /// (io_depth) has room.
    void issue_more();
    void issue_item(std::size_t idx);
    void submit_demand_read(std::size_t idx);
    void demand_read_done(std::size_t idx);

    // --- hedged reads & deadline budgets ---------------------------------
    /// Current hedge trigger delay: fixed, or a multiple of the EWMA of
    /// recent successful demand-read service times (T_b estimate until the
    /// EWMA is primed). Depends only on virtual-time observations, so hedge
    /// decisions are bit-deterministic.
    util::SimTime hedge_trigger_delay() const;
    /// Arm the hedge trigger for item `idx` when hedging is enabled: a
    /// kernel event that duplicates the demand read if it is still
    /// unresolved by then.
    void arm_hedge_trigger(std::size_t idx);
    /// Trigger fired: issue the duplicate read unless the primary already
    /// resolved, the outstanding-hedge cap is reached, or every owning
    /// query's hedge budget is spent.
    void maybe_issue_hedge(std::size_t idx);
    /// The hedge read finished: a failed hedge is dropped (the primary path
    /// continues); a successful one wins the race — the primary's read or
    /// pending backoff is cancelled and evaluation proceeds on hedge data.
    void hedge_done(std::size_t idx);
    /// Settle any hedge machinery of `idx` (pending trigger, outstanding
    /// hedge read) because the demand phase ended without the hedge winning.
    void cancel_hedge_machinery(std::size_t idx);
    /// Refund the unrendered tail of a cancelled read, split between the
    /// serving disk's service-time and fault-delay ledgers so the two stay
    /// disjoint. The route names the disk model that rendered the read.
    void refund_read_tail(const storage::ReadRoute& route,
                          const storage::ReadResult& read, util::SimTime remaining);
    /// The local (serve-everything-here) route used when no router is set.
    storage::ReadRoute self_route() noexcept {
        return storage::ReadRoute{&store_, &disk_res_, node_id_};
    }
    /// Abandon sub-queries of item `idx` whose queries are past the deadline
    /// budget (they complete degraded with what they have). Returns whether
    /// any sub-queries remain worth retrying for.
    bool drop_expired_subqueries(ItemRun& it);
    /// Charge the cold kernel-support ghost reads of item `idx` as one disk
    /// job, then begin evaluation.
    void proceed_supports(std::size_t idx);
    void begin_compute(std::size_t idx);
    void submit_compute(std::size_t idx);
    void compute_done(std::size_t idx);
    void item_finished(std::size_t idx);
    void end_batch();

    /// Insert a freshly read atom and propagate residency changes to the
    /// scheduler (and the prefetcher's accuracy accounting when enabled).
    void insert_into_cache(const storage::AtomId& atom,
                           std::shared_ptr<const field::VoxelBlock> data);
    /// Abandon sub-queries whose atom is unreadable: their owning queries
    /// lose those positions and complete *degraded* when nothing else is
    /// outstanding.
    void fail_subqueries(const std::vector<sched::SubQuery>& subs);
    void complete_query(QueryRuntime& runtime);

    /// Issue speculative trajectory reads onto idle disk channels (true
    /// background I/O: runs whenever a channel is free and no demand read is
    /// waiting; a later demand read preempts it mid-service).
    void try_issue_prefetch();

    /// Integrate resource-busy/overlap/idle time up to `now`. Called (via
    /// SimResource observers) immediately before every busy-channel-count
    /// change and around batch transitions.
    void account_to(util::SimTime now);
    void account_tick();

    /// Start the node's clock at `t` (makespan origin, accounting origin and
    /// — unless begin_shared pinned it globally — the timeline origin).
    void start_clock(util::SimTime t);
    /// Arm the node-death halt event from EngineConfig::halt_at.
    void arm_halt();
    /// Fire the halt-drained hook once the halt took effect with no batch in
    /// flight (checked at the halt event and again at end_batch()).
    void maybe_halt_drained();

    EngineConfig config_;
    /// The engine's private queue in standalone mode; null in shared-kernel
    /// mode. Declared before every member that schedules on events_ so it is
    /// destroyed last.
    std::unique_ptr<util::EventQueue> owned_events_;
    util::EventQueue& events_;
    util::NodeIndex node_id_;
    storage::ReplicaRouter* router_ = nullptr;
    storage::AtomStore store_;
    storage::DatabaseNode db_;
    util::SimResource disk_res_;
    util::SimResource cpu_res_;
    /// Where real sub-query evaluation runs: the external pool from
    /// EvalSpec::pool, the engine-owned pool (owned_eval_pool_, declared
    /// last so it drains before the components its tasks use are torn down),
    /// or null for inline evaluation in the event handler.
    util::ThreadPool* eval_pool_ = nullptr;
    /// Real-time source for EvalSpec::wall_clock_timing (util::wall_clock_ns
    /// when on, null when off). Indirection keeps the deterministic default
    /// free of wall-clock reads.
    std::uint64_t (*eval_tick_)() = nullptr;
    OracleRelay oracle_;
    std::unique_ptr<cache::BufferCache> cache_;
    std::unique_ptr<sched::Scheduler> scheduler_;
    std::unique_ptr<sched::TrajectoryPrefetcher> prefetcher_;
    std::vector<storage::AtomId> prefetch_queue_;
    std::vector<storage::ReadResult> prefetch_read_;  ///< Per-channel stash.

    std::unordered_map<workload::QueryId, QueryRuntime> runtime_;
    std::priority_queue<VisibilityEvent, std::vector<VisibilityEvent>,
                        std::greater<VisibilityEvent>>
        visibility_;
    std::vector<const workload::Job*> due_jobs_;  ///< Arrived, not yet admitted.
    std::unordered_map<workload::JobId, std::size_t> job_remaining_;
    std::vector<QueryOutcome> outcomes_;
    std::unique_ptr<ActiveBatch> batch_;
    bool dispatch_pending_ = false;

    /// Roll the timeline forward to cover `now`, then account one completion
    /// with the given response time (response < 0 means "no completion, just
    /// roll windows").
    void timeline_tick(util::SimTime now, double response_ms);
    void flush_timeline_window(util::SimTime window_end, double window_seconds);
    std::vector<TimelinePoint> timeline_;
    util::SimTime timeline_next_;
    std::uint64_t window_completions_ = 0;
    double window_response_ms_sum_ = 0.0;
    util::SimTime tl_disk_channel_time_;  ///< Integrals at the last flush.
    util::SimTime tl_cpu_channel_time_;
    util::SimTime tl_overlap_time_;

    std::size_t completed_ = 0;
    std::size_t expected_ = 0;  ///< Queries scheduled or injected so far.
    std::uint64_t atoms_processed_ = 0;
    std::uint64_t replica_reads_ = 0;  ///< Reads routed to another node.
    std::uint64_t atom_reads_ = 0;
    std::uint64_t read_retries_ = 0;
    std::uint64_t read_failures_ = 0;
    std::uint64_t failed_subqueries_ = 0;
    std::uint64_t degraded_queries_ = 0;
    std::uint64_t prefetch_aborted_ = 0;
    util::SimTime retry_backoff_time_;
    bool halted_ = false;
    // Hedging, deadline-budget and circuit-breaker accounting.
    std::uint64_t hedges_issued_ = 0;
    std::uint64_t hedges_won_ = 0;
    std::uint64_t hedges_lost_ = 0;
    std::uint64_t cancellations_ = 0;
    util::SimTime wasted_service_;       ///< Rendered disk time of cancelled losers.
    std::size_t outstanding_hedges_ = 0;
    std::size_t peak_hedges_ = 0;
    std::uint64_t deadline_misses_ = 0;
    std::uint64_t retries_suppressed_ = 0;
    util::Ewma read_ewma_;               ///< Successful demand-read service ms.
    std::uint64_t support_reads_ = 0;
    std::vector<std::uint64_t> support_scratch_;
    std::uint64_t subqueries_done_ = 0;
    std::uint64_t positions_done_ = 0;
    std::uint64_t eval_tasks_ = 0;        ///< Sub-queries dispatched to the pool.
    std::uint64_t samples_evaluated_ = 0; ///< Interpolated samples produced.
    std::uint64_t sample_digest_ = kFnvOffset;  ///< Folded in event order.
    /// Real nanoseconds spent inside evaluation (workers add concurrently).
    std::atomic<std::uint64_t> eval_wall_ns_{0};
    double job_span_ms_sum_ = 0.0;
    std::vector<double> job_spans_;
    std::size_t jobs_done_ = 0;
    std::size_t jobs_seen_ = 0;  ///< Jobs scheduled or injected so far.

    // Continuous resource accounting (integrated by account_tick).
    util::SimTime last_account_;
    util::SimTime disk_busy_time_;     ///< >= 1 disk channel busy.
    util::SimTime cpu_busy_time_;      ///< >= 1 worker busy.
    util::SimTime overlap_time_;       ///< Both simultaneously busy.
    util::SimTime idle_time_;          ///< Both idle and no batch active.
    bool ran_ = false;

    // Shared-kernel lifecycle state.
    bool shared_mode_ = false;
    bool clock_started_ = false;
    util::SimTime start_;      ///< Makespan origin (first arrival).
    util::SimTime end_time_;   ///< Last completion / halt-drain instant.
    std::function<void()> halt_drained_;
    bool halt_drain_fired_ = false;

    /// Engine-owned evaluation pool (EvalSpec::parallel with no external
    /// pool). Deliberately the last member: its destructor drains pending
    /// tasks, which capture `this`, the executor and atom payloads — so it
    /// must run before any other member is destroyed.
    std::unique_ptr<util::ThreadPool> owned_eval_pool_;
};

}  // namespace jaws::core
