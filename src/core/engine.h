// The JAWS engine: one database node's full stack (paper Fig. 7).
//
// Wires the query pre-processor, workload manager/scheduler, buffer cache and
// atom store together and drives a workload to completion under the virtual
// clock. The engine is the discrete-event simulator substituting for the
// paper's SQL Server deployment: reading a missed atom charges the disk
// model's cost, evaluating positions charges T_m, and query arrivals follow
// the (possibly sped-up) trace. Ordered jobs' data dependencies are enforced
// here — a query becomes *visible* to the scheduler only when its
// predecessor has completed and the user's think time has elapsed, exactly
// the dynamics of a live particle-tracking experiment.
//
// An Engine instance executes one workload once; construct a fresh engine
// per experimental configuration (they are cheap — the dataset is lazy).
#pragma once

#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cache/buffer_cache.h"
#include "core/config.h"
#include "core/metrics.h"
#include "sched/scheduler.h"
#include "storage/atom_store.h"
#include "storage/database_node.h"
#include "util/sim_time.h"
#include "workload/job.h"

namespace jaws::core {

/// Single-node engine.
class Engine {
  public:
    explicit Engine(const EngineConfig& config);

    /// Execute `workload` to completion and report. The workload must have
    /// jobs sorted by arrival time (the generator guarantees it). May be
    /// called once per engine.
    RunReport run(const workload::Workload& workload);

    /// Per-query completion records of the finished run (for distribution
    /// plots and tests). Valid after run().
    const std::vector<QueryOutcome>& outcomes() const noexcept { return outcomes_; }

    /// Component access (tests, examples).
    const cache::BufferCache& buffer_cache() const noexcept { return *cache_; }
    storage::AtomStore& store() noexcept { return store_; }
    sched::Scheduler& scheduler() noexcept { return *scheduler_; }
    const util::VirtualClock& clock() const noexcept { return clock_; }

  private:
    /// Oracle that forwards to the scheduler's workload manager once both
    /// exist (breaks the cache <-> scheduler construction cycle).
    class OracleRelay final : public cache::UtilityOracle {
      public:
        void set(const cache::UtilityOracle* target) noexcept { target_ = target; }
        double atom_utility(const storage::AtomId& atom) const override {
            return target_ != nullptr ? target_->atom_utility(atom) : 0.0;
        }
        double timestep_mean_utility(std::uint32_t t) const override {
            return target_ != nullptr ? target_->timestep_mean_utility(t) : 0.0;
        }

      private:
        const cache::UtilityOracle* target_ = nullptr;
    };

    struct QueryRuntime {
        const workload::Query* query = nullptr;
        const workload::Job* job = nullptr;
        std::size_t outstanding = 0;  ///< Sub-queries not yet executed.
        std::uint64_t failed = 0;     ///< Sub-queries abandoned on dead atoms.
        bool visible = false;
        util::SimTime visible_at;
    };

    struct VisibilityEvent {
        util::SimTime at;
        workload::QueryId query;

        bool operator>(const VisibilityEvent& o) const noexcept {
            return at == o.at ? query > o.query : at > o.at;
        }
    };

    /// How a demand read of an atom ended.
    enum class ReadStatus {
        kCached,  ///< Already resident; no disk request issued.
        kLoaded,  ///< Read from disk (possibly after transient-fault retries).
        kFailed,  ///< Retries exhausted or permanently bad: no data exists.
    };

    std::unique_ptr<cache::ReplacementPolicy> make_policy();
    std::unique_ptr<sched::Scheduler> make_scheduler();
    void submit_job(const workload::Job& job);
    void make_visible(workload::QueryId id);
    /// Read `atom` into the cache if absent, retrying transiently failed
    /// reads with bounded exponential backoff charged to the virtual clock.
    /// Propagates residency changes to the scheduler (and the prefetcher's
    /// accuracy accounting when enabled).
    ReadStatus ensure_resident(const storage::AtomId& atom);
    /// Abandon sub-queries whose atom is unreadable: their owning queries
    /// lose those positions and complete *degraded* when nothing else is
    /// outstanding.
    void fail_subqueries(const std::vector<sched::SubQuery>& subs);
    bool execute_one_batch();
    void complete_query(QueryRuntime& runtime);
    /// Perform speculative reads from the prediction queue while they fit
    /// before `until` (the next demand event) — prefetching uses only disk
    /// time that would otherwise be idle.
    void run_prefetches(util::SimTime until);

    EngineConfig config_;
    util::VirtualClock clock_;
    storage::AtomStore store_;
    storage::DatabaseNode db_;
    OracleRelay oracle_;
    std::unique_ptr<cache::BufferCache> cache_;
    std::unique_ptr<sched::Scheduler> scheduler_;
    std::unique_ptr<sched::TrajectoryPrefetcher> prefetcher_;
    std::vector<storage::AtomId> prefetch_queue_;

    std::unordered_map<workload::QueryId, QueryRuntime> runtime_;
    std::priority_queue<VisibilityEvent, std::vector<VisibilityEvent>,
                        std::greater<VisibilityEvent>>
        visibility_;
    std::unordered_map<workload::JobId, std::size_t> job_remaining_;
    std::vector<QueryOutcome> outcomes_;

    /// Roll the timeline forward to cover `now`, then account one completion
    /// with the given response time (response < 0 means "no completion, just
    /// roll windows").
    void timeline_tick(util::SimTime now, double response_ms);
    std::vector<TimelinePoint> timeline_;
    util::SimTime timeline_next_;
    std::uint64_t window_completions_ = 0;
    double window_response_ms_sum_ = 0.0;

    std::size_t completed_ = 0;
    std::uint64_t atoms_processed_ = 0;
    std::uint64_t atom_reads_ = 0;
    std::uint64_t read_retries_ = 0;
    std::uint64_t read_failures_ = 0;
    std::uint64_t failed_subqueries_ = 0;
    std::uint64_t degraded_queries_ = 0;
    util::SimTime retry_backoff_time_;
    bool halted_ = false;
    std::uint64_t support_reads_ = 0;
    std::vector<std::uint64_t> support_scratch_;
    std::uint64_t subqueries_done_ = 0;
    std::uint64_t positions_done_ = 0;
    double job_span_ms_sum_ = 0.0;
    std::vector<double> job_spans_;
    std::size_t jobs_done_ = 0;
    util::SimTime idle_time_;
    bool ran_ = false;
};

}  // namespace jaws::core
