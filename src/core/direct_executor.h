// Direct query execution with real data.
//
// The scheduling experiments run descriptor-only (voxel payloads cannot
// change which atoms a query touches), but the example programs want actual
// turbulence values: interpolated velocities to advect particles with,
// pressures to aggregate. DirectExecutor is the thin synchronous path for
// that — atom store with materialisation on, a buffer cache in front, and the
// database-node interpolation kernels — bypassing the batch scheduler the
// way a single interactive session would.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/buffer_cache.h"
#include "core/config.h"
#include "field/interpolation.h"
#include "storage/atom_store.h"
#include "storage/database_node.h"
#include "util/thread_pool.h"

namespace jaws::core {

/// Result of one direct evaluation.
struct DirectResult {
    std::vector<field::FlowSample> samples;  ///< Parallel to the input positions.
    util::SimTime virtual_cost;              ///< Modelled I/O + compute time.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
};

/// Statistical array over a sub-volume (the paper's query class (1):
/// "evaluating statistical arrays of turbulence quantities over the entire
/// or parts of the volume", Sec. III-A).
struct VolumeStats {
    std::uint64_t samples = 0;        ///< Sample points evaluated.
    field::Vec3 mean_velocity;        ///< Component-wise mean velocity.
    double rms_velocity = 0.0;        ///< Root-mean-square speed.
    double mean_pressure = 0.0;
    double pressure_variance = 0.0;
    double kinetic_energy = 0.0;      ///< 0.5 * <|u|^2>.
    util::SimTime virtual_cost;       ///< Modelled I/O + compute time.
    std::uint64_t atoms_touched = 0;  ///< Atoms in the box cover.
};

/// Synchronous executor over materialised atoms.
///
/// Evaluation is two-phase: a serial I/O phase reads and caches every touched
/// atom in Morton order (cost accounting stays deterministic), then the
/// per-atom interpolation runs — on a thread pool when `config.eval` enables
/// one, inline otherwise. Per-atom results land in disjoint slots of the
/// output vector and merge in Morton order, so samples are bit-identical for
/// any worker count.
class DirectExecutor {
  public:
    /// Builds its own store with materialisation forced on; `config.cache`
    /// sizes the private cache and `config.eval` selects the evaluation pool
    /// (an external pool wins; otherwise one is owned when the resolved
    /// thread count exceeds 1).
    explicit DirectExecutor(const EngineConfig& config);

    /// Evaluate velocity+pressure at `positions` within time step `timestep`
    /// using Lagrange interpolation of `order`.
    DirectResult evaluate(std::uint32_t timestep, const std::vector<field::Vec3>& positions,
                          field::InterpOrder order = field::InterpOrder::kLag4);

    /// Statistical array over the axis-aligned box [lo, hi] of time step
    /// `timestep`, sampled on a regular lattice of `samples_per_axis`^3
    /// points (torus coordinates; lo <= hi component-wise, both in [0, 1)).
    /// Atoms of the box cover are visited in Morton order, each read once.
    VolumeStats evaluate_box(std::uint32_t timestep, const field::Vec3& lo,
                             const field::Vec3& hi, std::uint32_t samples_per_axis = 16,
                             field::InterpOrder order = field::InterpOrder::kLag4);

    /// Ground-truth field (examples compare interpolation against it).
    const field::SyntheticField& field() const noexcept { return store_.field(); }
    /// Dataset geometry.
    const field::GridSpec& grid() const noexcept { return store_.grid(); }
    /// Cache statistics so far.
    const cache::CacheStats& cache_stats() const noexcept { return cache_.stats(); }

  private:
    storage::AtomStore store_;
    cache::BufferCache cache_;
    storage::DatabaseNode db_;
    util::ThreadPool* eval_pool_ = nullptr;  ///< Null = inline evaluation.
    std::unique_ptr<util::ThreadPool> owned_pool_;  ///< Last: drains first.
};

}  // namespace jaws::core
