// Experiment metrics.
//
// Everything the paper's evaluation reports: query throughput (Fig. 10/11a),
// query response time (Fig. 11b), cache hit ratio and per-query policy
// overhead (Table I), seconds-per-query, plus the gating statistics behind
// the job-awareness results. Collected by the engine over one workload run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/buffer_cache.h"
#include "sched/precedence_graph.h"
#include "sched/prefetcher.h"
#include "sched/qos.h"
#include "storage/disk_model.h"
#include "storage/fault_injector.h"
#include "util/sim_time.h"
#include "workload/query.h"

namespace jaws::core {

/// Incremental FNV-1a over raw bytes. The engine folds every interpolated
/// sample through this at the sub-query's (deterministic) virtual completion
/// event, so two runs produce equal digests iff their results are
/// bit-identical — the parallel-equivalence tests pin these as goldens.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a64(std::uint64_t h, const void* data,
                             std::size_t len) noexcept {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/// Completion record of one query.
struct QueryOutcome {
    workload::QueryId query = 0;
    workload::JobId job = workload::kNoJob;
    util::SimTime visible;    ///< When its inputs were ready.
    util::SimTime completed;  ///< When the last sub-query finished.
    /// Sub-queries whose atom never became readable (retries exhausted or a
    /// permanently bad range); > 0 means the query completed *degraded*:
    /// it returned partial results instead of crashing the run.
    std::uint64_t failed_subqueries = 0;
    /// Interpolated samples this query produced (0 on descriptor-only runs).
    std::uint64_t samples_evaluated = 0;
    /// FNV-1a over this query's sample bytes in sub-query completion order
    /// (kFnvOffset when no samples were produced).
    std::uint64_t sample_digest = kFnvOffset;
    /// Hedged duplicate reads issued on this query's behalf (HedgeSpec).
    std::uint64_t hedged_reads = 0;
    /// The query exhausted its deadline budget: remaining retries were
    /// abandoned and it completed degraded with the samples it had.
    bool deadline_missed = false;

    util::SimTime response() const noexcept { return completed - visible; }
    bool degraded() const noexcept { return failed_subqueries > 0; }
};

/// One sample of the run's time series (fixed virtual-time windows).
struct TimelinePoint {
    util::SimTime window_end;        ///< End of the window (virtual time).
    std::uint64_t completions = 0;   ///< Queries completed in the window.
    double mean_response_ms = 0.0;   ///< Mean response of those completions.
    double alpha = 0.0;              ///< Age bias at the window boundary.
    std::size_t backlog_subqueries = 0;  ///< Pending sub-queries at the boundary.
    double cache_hit_rate = 0.0;     ///< Cumulative hit rate at the boundary.
    double disk_utilization = 0.0;   ///< Mean busy disk channels / io_depth.
    double cpu_utilization = 0.0;    ///< Mean busy workers / compute_workers.
    double overlap_fraction = 0.0;   ///< Share of the window both disk and CPU busy.
};

/// Aggregated results of one engine run.
struct RunReport {
    std::string scheduler_name;
    std::string cache_policy;

    std::size_t queries = 0;
    std::size_t jobs = 0;
    util::SimTime makespan;           ///< Virtual time from start to last completion.
    double throughput_qps = 0.0;      ///< queries / makespan (virtual seconds).
    /// Steady-state throughput: queries completed between the 10th and 90th
    /// completion percentiles divided by that window. Excludes the warm-up
    /// ramp and the closed-loop cool-down tail, where every scheduler is
    /// bound by individual job chains rather than by service capacity; this
    /// is the saturated-regime figure the paper's comparisons are about.
    double steady_throughput_qps = 0.0;
    /// Queries per *busy* virtual second: idle spans, where the engine had no
    /// schedulable work and jumped to the next arrival/visibility event, are
    /// excluded. Under sustained backlog this equals the node's service
    /// capacity — the quantity the paper's throughput comparisons measure —
    /// and it is insensitive to the closed-loop cool-down tail.
    double busy_throughput_qps = 0.0;
    util::SimTime idle_time;          ///< Total virtual time with nothing schedulable.
    double seconds_per_query = 0.0;   ///< Inverse throughput (Table I's Seconds/Qry).

    double mean_response_ms = 0.0;
    double median_response_ms = 0.0;
    double p95_response_ms = 0.0;
    /// Tail percentiles (NaN when the run completed no queries — an empty
    /// distribution has no percentiles; formatting renders them "n/a").
    double p99_response_ms = 0.0;
    double p999_response_ms = 0.0;
    double mean_job_span_ms = 0.0;    ///< Job completion - job arrival, averaged.
    /// Raw per-query response samples in completion order (the cluster pools
    /// these across nodes for exact cluster-wide percentiles).
    std::vector<double> response_ms;

    cache::CacheStats cache;
    double cache_overhead_per_query_ms = 0.0;  ///< Wall policy overhead per query.
    storage::DiskStats disk;

    // --- modeled-resource accounting (event kernel) ---------------------
    // The engine runs two queued resources: a disk with io_depth service
    // channels and a CPU pool with compute_workers servers. These figures
    // say where a configuration saturates (paper Fig. 11's regime question:
    // is the node I/O-bound or compute-bound?).
    util::SimTime disk_busy_time;    ///< Virtual time >= 1 disk channel was busy.
    util::SimTime cpu_busy_time;     ///< Virtual time >= 1 worker was busy.
    util::SimTime overlap_time;      ///< Time disk and CPU were busy *simultaneously*.
    double disk_utilization = 0.0;   ///< Channel-time integral / (io_depth * makespan).
    double cpu_utilization = 0.0;    ///< Worker-time integral / (workers * makespan).
    double overlap_fraction = 0.0;   ///< overlap_time / makespan.
    std::size_t io_depth = 1;        ///< Channels the run was configured with.
    std::size_t compute_workers = 1; ///< Workers the run was configured with.
    /// Most CPU channels simultaneously busy at any virtual instant — the
    /// modeled concurrency the run actually reached, hence the ceiling on
    /// real-thread speedup from the evaluation pool.
    std::size_t peak_cpu_busy = 0;
    std::size_t peak_disk_busy = 0;  ///< Same watermark for the disk channels.

    // --- real-thread evaluation (EvalSpec; zero on serial/descriptor runs) --
    std::size_t eval_threads = 0;       ///< Pool workers used (0 = inline eval).
    std::uint64_t eval_tasks = 0;       ///< Sub-queries dispatched to the pool.
    std::uint64_t samples_evaluated = 0;  ///< Interpolated samples produced.
    /// FNV-1a over all sample bytes in virtual completion-event order; equal
    /// across runs iff results are bit-identical (kFnvOffset when no samples).
    std::uint64_t sample_digest = kFnvOffset;
    /// Total real nanoseconds workers spent inside sub-query evaluation
    /// (only collected when EvalSpec::wall_clock_timing is on; benches use
    /// it to report real-vs-modeled compute utilisation).
    std::uint64_t eval_wall_ns = 0;

    std::uint64_t atoms_processed = 0;  ///< Batch items executed.
    std::uint64_t atom_reads = 0;       ///< Cache misses (disk reads).
    std::uint64_t replica_reads = 0;    ///< Reads served by another node's replica.
    std::uint64_t support_reads = 0;    ///< Disk reads for kernel-support atoms.
    std::uint64_t subqueries = 0;
    std::uint64_t positions = 0;

    // --- fault injection & recovery (all zero on a fault-free substrate) ---
    std::uint64_t read_retries = 0;      ///< Re-issued demand reads after a fault.
    std::uint64_t read_failures = 0;     ///< Demand reads that exhausted recovery.
    std::uint64_t failed_subqueries = 0; ///< Sub-queries abandoned on dead atoms.
    std::uint64_t degraded_queries = 0;  ///< Queries completed with partial results.
    util::SimTime retry_backoff_time;    ///< Virtual time spent backing off.
    storage::FaultStats faults;          ///< What the injector actually fired.
    /// True when the run was cut short by a node-death event (halt_at):
    /// the report covers only the work finished before the halt.
    bool halted = false;

    // --- hedged reads & deadline budgets (all zero when disabled) --------
    std::uint64_t hedges_issued = 0;  ///< Duplicate demand reads issued.
    std::uint64_t hedges_won = 0;     ///< Hedge finished first (primary cancelled).
    std::uint64_t hedges_lost = 0;    ///< Primary beat the hedge, or the hedge faulted.
    std::uint64_t cancellations = 0;  ///< Loser reads/backoffs cancelled on first completion.
    /// Disk service the cancelled losers had already rendered — the price of
    /// hedging (the tail-latency win is bought with this wasted work).
    util::SimTime wasted_service;
    std::size_t peak_hedges_outstanding = 0;  ///< Watermark vs HedgeSpec::max_outstanding.
    std::uint64_t deadline_misses = 0;        ///< Queries that exhausted their budget.
    std::uint64_t retries_suppressed = 0;     ///< Retries denied by the circuit breaker.

    double final_alpha = 0.0;
    sched::GatingStats gating;
    sched::QosStats qos;              ///< Deadline accounting (QoS mode only).
    sched::PrefetchStats prefetch;    ///< Speculative-read accounting (if enabled).
    /// Speculative reads cancelled mid-service because a demand read
    /// preempted their disk channel (overlapped-I/O engine only).
    std::uint64_t prefetch_aborted = 0;
    /// Wall span of each completed job (completion of last query - arrival),
    /// in milliseconds — the quantity Fig. 8 histograms from the SQL log.
    std::vector<double> job_span_ms;

    /// Per-window time series (empty unless EngineConfig::timeline_window_s
    /// is set): how throughput, response time, the adaptive age bias and the
    /// backlog evolved over the run.
    std::vector<TimelinePoint> timeline;

    /// One-line summary for bench tables.
    std::string summary() const;
};

/// Compute response-time aggregates from outcomes into `report`.
void fill_response_stats(const std::vector<QueryOutcome>& outcomes, RunReport& report);

}  // namespace jaws::core
