#include "core/metrics.h"

#include <cstdio>

#include "util/stats.h"

namespace jaws::core {

std::string RunReport::summary() const {
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "%-22s tp=%7.3f q/s  rt(mean)=%9.1f ms  rt(p95)=%9.1f ms  hit=%5.1f%%  "
                  "reads=%llu  disk=%4.1f%%  cpu=%4.1f%%  overlap=%4.1f%%",
                  scheduler_name.c_str(), throughput_qps, mean_response_ms, p95_response_ms,
                  100.0 * cache.hit_rate(), static_cast<unsigned long long>(atom_reads),
                  100.0 * disk_utilization, 100.0 * cpu_utilization,
                  100.0 * overlap_fraction);
    return buf;
}

void fill_response_stats(const std::vector<QueryOutcome>& outcomes, RunReport& report) {
    if (outcomes.empty()) return;
    util::RunningStats stats;
    std::vector<double> samples;
    std::vector<double> completions;
    samples.reserve(outcomes.size());
    completions.reserve(outcomes.size());
    for (const auto& o : outcomes) {
        const double ms = o.response().millis();
        stats.add(ms);
        samples.push_back(ms);
        completions.push_back(o.completed.seconds());
    }
    report.mean_response_ms = stats.mean();
    report.median_response_ms = util::percentile(samples, 50.0);
    report.p95_response_ms = util::percentile(samples, 95.0);

    const double t10 = util::percentile(completions, 10.0);
    const double t90 = util::percentile(completions, 90.0);
    if (t90 > t10)
        report.steady_throughput_qps =
            0.8 * static_cast<double>(outcomes.size()) / (t90 - t10);
    else
        report.steady_throughput_qps = report.throughput_qps;
}

}  // namespace jaws::core
