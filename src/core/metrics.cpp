#include "core/metrics.h"

#include <cstdio>

#include "util/stats.h"

namespace jaws::core {

std::string RunReport::summary() const {
    char buf[320];
    // Percentiles of an empty run are NaN and render as "n/a" rather than a
    // fake 0.0 ms latency.
    std::snprintf(buf, sizeof buf,
                  "%-22s tp=%7.3f q/s  rt(mean)=%9.1f ms  rt(p95)=%9s ms  "
                  "rt(p99)=%9s ms  hit=%5.1f%%  "
                  "reads=%llu  disk=%4.1f%%  cpu=%4.1f%%  overlap=%4.1f%%",
                  scheduler_name.c_str(), throughput_qps, mean_response_ms,
                  util::format_quantile(p95_response_ms).c_str(),
                  util::format_quantile(p99_response_ms).c_str(),
                  100.0 * cache.hit_rate(), static_cast<unsigned long long>(atom_reads),
                  100.0 * disk_utilization, 100.0 * cpu_utilization,
                  100.0 * overlap_fraction);
    return buf;
}

void fill_response_stats(const std::vector<QueryOutcome>& outcomes, RunReport& report) {
    if (outcomes.empty()) {
        // No completions: the response distribution is empty, so every
        // percentile is NaN (percentile({}) — rendered "n/a"), while the
        // additive fields (mean, throughput) stay at their zero defaults.
        report.median_response_ms = util::percentile({}, 50.0);
        report.p95_response_ms = util::percentile({}, 95.0);
        report.p99_response_ms = util::percentile({}, 99.0);
        report.p999_response_ms = util::percentile({}, 99.9);
        return;
    }
    util::RunningStats stats;
    std::vector<double> samples;
    std::vector<double> completions;
    samples.reserve(outcomes.size());
    completions.reserve(outcomes.size());
    for (const auto& o : outcomes) {
        const double ms = o.response().millis();
        stats.add(ms);
        samples.push_back(ms);
        completions.push_back(o.completed.seconds());
    }
    report.mean_response_ms = stats.mean();
    report.median_response_ms = util::percentile(samples, 50.0);
    report.p95_response_ms = util::percentile(samples, 95.0);
    report.p99_response_ms = util::percentile(samples, 99.0);
    report.p999_response_ms = util::percentile(samples, 99.9);

    const double t10 = util::percentile(completions, 10.0);
    const double t90 = util::percentile(completions, 90.0);
    if (t90 > t10)
        report.steady_throughput_qps =
            0.8 * static_cast<double>(outcomes.size()) / (t90 - t10);
    else
        report.steady_throughput_qps = report.throughput_qps;
    report.response_ms = std::move(samples);
}

}  // namespace jaws::core
