// Engine configuration: one place to assemble a full JAWS deployment.
//
// An EngineConfig describes everything Fig. 7's per-node stack needs: the
// dataset geometry, the simulated disk, the cost constants of Eq. 1, the
// buffer cache (capacity + replacement policy), and which scheduler to run
// (NoShare / LifeRaft with fixed alpha / JAWS with feature switches).
// Defaults mirror the paper's experimental setup scaled to the 800 GB sample:
// 31 time steps, 4096 atoms per step, a 2 GB (256-atom) cache, k = 15 and an
// initial alpha of 0.5.
#pragma once

#include <cstdint>

#include "field/grid.h"
#include "field/synthetic_field.h"
#include "sched/jaws.h"
#include "sched/prefetcher.h"
#include "sched/workload_manager.h"
#include "storage/atom_store.h"
#include "storage/database_node.h"
#include "util/event_queue.h"

namespace jaws::util {
class ThreadPool;
}  // namespace jaws::util

namespace jaws::core {

/// Which replacement policy the buffer cache runs (Table I's rows).
enum class CachePolicy : std::uint8_t { kLru, kLruK, kSlru, kUrc, kTwoQ };

/// Which scheduler drives the node (Fig. 10's columns).
enum class SchedulerKind : std::uint8_t { kNoShare, kLifeRaft, kJaws };

/// Buffer-cache settings.
struct CacheSpec {
    CachePolicy policy = CachePolicy::kLruK;
    std::size_t capacity_atoms = 256;  ///< 2 GB of 8 MB atoms.
    double slru_protected_fraction = 0.05;
    unsigned lru_k = 2;
    double twoq_in_fraction = 0.25;  ///< A1in share for the 2Q policy.

    /// Measure policy overhead in real wall-clock nanoseconds
    /// (util::wall_clock_ns) instead of deterministic virtual ticks.
    /// Benches reporting Table I's "Overhead/Qry" column turn this on;
    /// reproducible runs (tests, golden fixtures) keep it off.
    bool wall_clock_overhead = false;
};

/// Scheduler selection and parameters.
struct SchedulerSpec {
    SchedulerKind kind = SchedulerKind::kJaws;
    double liferaft_alpha = 0.0;  ///< Fixed alpha for kLifeRaft.
    sched::JawsConfig jaws;       ///< Parameters for kJaws.
};

/// Real-thread evaluation of sub-query interpolation.
///
/// The modeled CPU pool (`compute_workers` SimResource channels) stays
/// authoritative for *virtual* time; this spec only controls where the real
/// interpolation work runs. With `parallel` on and materialised data, the
/// engine dispatches each sub-query's interpolation onto a util::ThreadPool
/// when its modeled service starts and joins the result at the modeled
/// completion event — so real work overlaps exactly as the modeled channels
/// do, and results merge in deterministic virtual-event order.
struct EvalSpec {
    /// Evaluate on a thread pool instead of inline in the event handler.
    /// Only takes effect when the run materialises data; descriptor-only
    /// runs never spawn threads.
    bool parallel = true;

    /// Worker threads for an engine-owned pool; 0 means `compute_workers`
    /// (matching real threads to modeled channels).
    std::size_t threads = 0;

    /// Externally owned pool to share across engines (the cluster facade
    /// points every node engine here). Non-null wins over `threads`; the
    /// caller keeps it alive for the engine's lifetime.
    util::ThreadPool* pool = nullptr;

    /// Measure real evaluation wall time (util::wall_clock_ns) into
    /// RunReport::eval_wall_ns. Bench-only, like CacheSpec's equivalent:
    /// deterministic runs keep it off.
    bool wall_clock_timing = false;

    /// Run materialised sub-query interpolation through the batched
    /// SIMD-friendly kernel (field::BatchInterpolator: Morton-blocked
    /// traversal, SoA weight planes, fixed-trip-count vectorizable
    /// stencils) instead of the historical one-position-at-a-time scalar
    /// loop. Bit-identical either way — the equivalence suites pin batched
    /// == scalar digests — so this is a pure throughput knob; off exists
    /// for A/B benchmarking (bench/micro_primitives) and regression
    /// triage.
    bool batch = true;
};

/// Recovery policy for injected transient read errors: failed demand reads
/// retry with bounded exponential backoff, every delay charged to the
/// virtual clock (so QoS deadline math sees the real degraded timeline).
/// An atom whose demand read exhausts all attempts marks the affected
/// sub-queries failed; their queries complete *degraded* instead of
/// crashing the run.
struct RetrySpec {
    std::size_t max_attempts = 4;     ///< Total read attempts per demand miss.
    double backoff_base_ms = 5.0;     ///< Virtual delay before the first retry.
    double backoff_multiplier = 2.0;  ///< Growth factor per further retry.
    double backoff_cap_ms = 1000.0;   ///< Upper bound on any single delay.

    /// Circuit breaker: total retries the whole run may spend (0 = unlimited).
    /// Once cumulative retries reach the budget the circuit opens and further
    /// transient failures fail fast (their sub-queries abandoned, queries
    /// completing degraded) instead of piling onto the backoff queue — the
    /// retry-storm guard a production cluster runs with.
    std::size_t total_retry_budget = 0;
};

/// Hedged demand reads (tail-latency robustness, following the
/// hedged-request pattern of Dean & Barroso's "The Tail at Scale"): when a
/// primary demand read sits past a trigger delay, the engine issues a
/// duplicate read for the same atom on another disk channel (a replica
/// spindle of the RAID set) and the first completion wins — the loser is
/// cancelled mid-service and its unrendered tail refunded. Disabled by
/// default; a disabled spec schedules *no* events and is bit-identical to a
/// build without the feature (the golden-equivalence harness pins this).
struct HedgeSpec {
    bool enabled = false;

    /// Fixed trigger delay in virtual ms before the duplicate is issued.
    /// 0 = adaptive: trigger at `trigger_ewma_multiplier` times the EWMA of
    /// recent successful demand-read service times (falling back to the
    /// T_b estimate until the EWMA is primed).
    double trigger_ms = 0.0;
    double trigger_ewma_multiplier = 3.0;  ///< Trigger = mult * EWMA(read ms).
    double ewma_alpha = 0.2;               ///< Weight on the newest observation.

    /// Engine-wide cap on simultaneously outstanding hedge reads (a hedge
    /// storm must never displace primary demand traffic).
    std::size_t max_outstanding = 4;

    /// Hedges any single query may consume over its lifetime.
    std::size_t budget_per_query = 2;
};

/// Full per-node configuration.
struct EngineConfig {
    field::GridSpec grid;
    field::FieldSpec field;
    storage::DiskSpec disk;

    /// Concurrent disk service channels (the RAID stripe set's command
    /// parallelism). The event kernel pipelines up to `io_depth` batch items
    /// through the disk at once, so demand reads overlap batch evaluation and
    /// each other. 1 reproduces the historical strictly-serial engine
    /// bit-for-bit (read, then evaluate, then next read).
    std::size_t io_depth = 1;

    /// Parallel batch-evaluation workers (modeled CPU pool). Sub-query
    /// evaluation of distinct batch items proceeds concurrently on up to this
    /// many servers. 1 reproduces the historical serial semantics.
    std::size_t compute_workers = 1;

    /// Real-thread dispatch of sub-query evaluation (see EvalSpec).
    EvalSpec eval;
    storage::CostModel compute;        ///< Actual per-position cost charged (T_m).
    sched::CostConstants estimates;    ///< T_b/T_m estimates used by Eq. 1.
    CacheSpec cache;
    SchedulerSpec scheduler;
    std::size_t run_length = 200;      ///< Queries per run (alpha controller + SLRU).
    bool materialize_data = false;     ///< Synthesize voxel payloads (examples only).
    sched::PrefetchConfig prefetch;    ///< Trajectory prefetching (Sec. VII).

    /// Virtual seconds per timeline sample in RunReport::timeline; 0 disables
    /// time-series collection.
    double timeline_window_s = 0.0;

    /// Cost of fetching one kernel-support ghost region from disk, as a
    /// fraction of T_b. Charged whenever a sub-query's interpolation kernel
    /// spills into a neighbour atom that is neither cache-resident nor
    /// co-scheduled in the same batch (see Engine::execute_one_batch).
    double support_read_fraction = 0.10;

    /// Virtual cost of one scheduler->database dispatch round trip (batch
    /// submission, plan setup, clustered-index descent). Charged once per
    /// non-empty batch: single-atom scheduling pays it per atom, the
    /// two-level framework amortises it over k atoms, NoShare over a whole
    /// query.
    double dispatch_overhead_ms = 5.0;

    /// Deterministic fault injection (default: fault-free; zero-cost when
    /// disabled). Node-down events inside are consumed by TurbulenceCluster.
    storage::FaultSpec faults;

    /// Retry/backoff policy for transiently failed demand reads.
    RetrySpec retry;

    /// Hedged duplicate demand reads against stragglers (default: off).
    HedgeSpec hedge;

    /// Per-query deadline budget in virtual ms, measured from the query
    /// becoming visible (0 = unlimited). A query over budget stops retrying:
    /// at the next retry boundary its remaining sub-queries on the failed
    /// atom are abandoned and it completes *degraded* with the samples
    /// evaluated so far — graceful degradation instead of an unbounded
    /// backoff loop (RunReport::deadline_misses counts these).
    double deadline_budget_ms = 0.0;

    /// Same-tick tie-break perturbation for the schedule-perturbation
    /// determinism checker (tests/perturbation_test.cpp). The default is the
    /// identity; any perturbation of the commutative priority classes must
    /// leave every report digest bit-identical. Applied to the engine-owned
    /// queue in standalone runs and to the cluster's shared queue in unified
    /// runs.
    util::TiePerturbation tie_perturbation;

    /// Virtual time at which this node dies mid-run (SimTime::max() = never).
    /// Set by TurbulenceCluster from FaultSpec::node_down; a halted run
    /// reports partial completion instead of throwing.
    util::SimTime halt_at = util::SimTime::max();

    /// Reject nonsensical configurations (zero-sized grid or cache,
    /// atom_side not dividing voxels_per_side, negative costs, out-of-range
    /// probabilities) with a descriptive std::invalid_argument. Called at
    /// Engine construction.
    void validate() const;
};

}  // namespace jaws::core
