// The Turbulence database cluster facade (paper Fig. 7).
//
// In production, data are partitioned spatially across nodes, each running
// its own JAWS instance; incoming queries are split by partition and each
// node schedules its share independently. This facade reproduces that
// architecture: atoms are assigned to nodes by contiguous Morton ranges
// (preserving spatial locality within a node), each job is projected onto
// every node it touches, and the per-node engines run in parallel on a
// thread pool. Reported cluster throughput uses the slowest node's virtual
// makespan — the cluster is done when its last node is.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "workload/job.h"

namespace jaws::core {

/// Cluster-wide configuration: one node template replicated `nodes` times.
struct ClusterConfig {
    EngineConfig node;       ///< Per-node stack configuration.
    std::size_t nodes = 4;   ///< Number of database nodes.
};

/// Aggregated cluster results.
struct ClusterReport {
    std::vector<RunReport> per_node;      ///< One report per node (may be empty runs).
    util::SimTime makespan;               ///< Slowest node's virtual makespan.
    double total_throughput_qps = 0.0;    ///< Total query parts / makespan.
    double mean_response_ms = 0.0;        ///< Query-part weighted mean response.
    double cache_hit_rate = 0.0;          ///< Aggregate over all nodes.
};

/// Spatially partitioned multi-node deployment.
class TurbulenceCluster {
  public:
    explicit TurbulenceCluster(const ClusterConfig& config) : config_(config) {}

    /// Node owning the atom with Morton code `morton` under `atoms_per_step`
    /// atoms per time step split into `nodes` contiguous Morton ranges.
    static std::size_t node_of(std::uint64_t morton, std::uint64_t atoms_per_step,
                               std::size_t nodes);

    /// Project `workload` onto each node (queries keep their IDs; footprints
    /// are filtered to the node's atoms; queries that touch no atom of the
    /// node are dropped and the job re-sequenced). Exposed for tests.
    std::vector<workload::Workload> partition(const workload::Workload& workload) const;

    /// Partition, run every node engine in parallel, aggregate.
    ClusterReport run(const workload::Workload& workload) const;

  private:
    ClusterConfig config_;
};

}  // namespace jaws::core
