// The Turbulence database cluster facade (paper Fig. 7).
//
// In production, data are partitioned spatially across nodes, each running
// its own JAWS instance; incoming queries are split by partition and each
// node schedules its share independently. This facade reproduces that
// architecture: atoms are assigned to nodes by contiguous Morton ranges
// (preserving spatial locality within a node), each job is projected onto
// every node it touches, and the per-node engines run in parallel on a
// thread pool. Reported cluster throughput uses the slowest node's virtual
// makespan — the cluster is done when its last node is.
//
// Fault tolerance: Morton ranges may be replicated k ways (range owned by
// node n is also stored on nodes n+1 .. n+k-1 mod N, the classic chained
// declustering layout). When FaultSpec::node_down kills a node mid-run, the
// queries it had not completed by its death are re-projected onto the first
// surviving replica of its range and re-run there after that replica
// finishes its own share; ClusterReport::makespan then reports the degraded
// end-to-end span. With replication 1 the dead node's unfinished queries
// are *lost* (reported, never silently dropped) — exactly the trade-off a
// production deployment makes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "workload/job.h"

namespace jaws::core {

/// Cluster-wide configuration: one node template replicated `nodes` times.
struct ClusterConfig {
    EngineConfig node;       ///< Per-node stack configuration.
    std::size_t nodes = 4;   ///< Number of database nodes.
    /// Copies of each Morton range (1 = no redundancy). Range owned by node
    /// n is also readable on nodes n+1 .. n+replication-1 (mod nodes).
    std::size_t replication = 1;

    /// Reject nonsensical cluster configurations (zero nodes, replication
    /// outside [1, nodes], node-down events naming nonexistent nodes) with
    /// a descriptive std::invalid_argument; also validates the node config.
    void validate() const;
};

/// Aggregated cluster results.
struct ClusterReport {
    std::vector<RunReport> per_node;      ///< One report per node (may be empty runs).
    /// Recovery runs executed on replicas after node deaths (one per
    /// failover, in node-death order). Their work is included in the
    /// aggregate figures below.
    std::vector<RunReport> recovery;
    util::SimTime makespan;               ///< Slowest node's virtual makespan
                                          ///< (including failover re-runs).
    double total_throughput_qps = 0.0;    ///< Total query parts / makespan.
    double mean_response_ms = 0.0;        ///< Query-part weighted mean response.
    double cache_hit_rate = 0.0;          ///< Aggregate over all nodes.
    double mean_disk_utilization = 0.0;   ///< Makespan-weighted mean over runs.
    double mean_cpu_utilization = 0.0;    ///< Makespan-weighted mean over runs.

    /// Cluster-wide response-time tail, computed over the *pooled* per-query
    /// samples of every node and recovery run — exact percentiles, not an
    /// average of per-node percentiles (which would understate the tail).
    /// NaN when no query part completed anywhere (rendered "n/a").
    double p99_response_ms = 0.0;
    double p999_response_ms = 0.0;

    // --- fault & recovery accounting ---
    std::size_t dead_nodes = 0;       ///< Nodes killed by node-down events.
    std::size_t failovers = 0;        ///< Deaths whose work a replica re-ran.
    std::size_t requeued_queries = 0; ///< Query parts re-projected onto replicas.
    std::size_t lost_queries = 0;     ///< Parts lost for lack of a surviving replica.
    std::uint64_t degraded_queries = 0;  ///< Sum of per-node degraded completions.
    std::uint64_t read_retries = 0;      ///< Sum over nodes and recovery runs.
    std::uint64_t read_failures = 0;     ///< Sum over nodes and recovery runs.

    // --- hedging & deadline accounting (sums over nodes and recovery runs;
    // all zero when HedgeSpec/deadline budgets are off) ---
    std::uint64_t hedges_issued = 0;
    std::uint64_t hedges_won = 0;
    std::uint64_t hedges_lost = 0;
    std::uint64_t cancellations = 0;
    util::SimTime wasted_service;        ///< Rendered disk time of cancelled losers.
    std::uint64_t deadline_misses = 0;
    std::uint64_t retries_suppressed = 0;
};

/// Spatially partitioned multi-node deployment.
class TurbulenceCluster {
  public:
    explicit TurbulenceCluster(const ClusterConfig& config);

    /// Node owning the atom with Morton code `morton` under `atoms_per_step`
    /// atoms per time step split into `nodes` contiguous Morton ranges.
    static std::size_t node_of(std::uint64_t morton, std::uint64_t atoms_per_step,
                               std::size_t nodes);

    /// Project `workload` onto each node (queries keep their IDs; footprints
    /// are filtered to the node's atoms; queries that touch no atom of the
    /// node are dropped and the job re-sequenced). Exposed for tests.
    std::vector<workload::Workload> partition(const workload::Workload& workload) const;

    /// Partition, run every node engine in parallel, handle node deaths by
    /// re-running unfinished work on surviving replicas, aggregate.
    ClusterReport run(const workload::Workload& workload) const;

  private:
    ClusterConfig config_;
};

}  // namespace jaws::core
