// The Turbulence database cluster facade (paper Fig. 7).
//
// In production, data are partitioned spatially across nodes, each running
// its own JAWS instance; incoming queries are routed to the nodes owning
// their atoms and replicas absorb both load and failures. Two execution
// modes reproduce that architecture:
//
//   * Unified kernel (the default, ClusterMode::kUnified): every node's
//     engine shares ONE util::EventQueue. Each node is a set of SimResource
//     disk/CPU channels plus its own scheduler state; query arrivals are
//     routed to owning nodes at event time (node_of at route time, not
//     partition time); replicated atom reads may be served by any surviving
//     replica in the chain n .. n+k-1 — the kernel diverts a read to the
//     chain member with the shallowest modeled disk queue once the owner's
//     backlog exceeds it by a locality margin (a diversion forfeits the
//     owner's sequential head position), so replication doubles as load
//     balancing. Node deaths fire inside the kernel: the dead node finishes
//     its in-flight batch, then its unfinished work is re-routed in-line to
//     surviving replicas, contending for their modeled disks and CPUs (and
//     interacting with hedging, retries and deadline budgets) instead of
//     being summed after the fact.
//   * Legacy per-node path (ClusterMode::kLegacy): the workload is
//     partitioned up front, N isolated engines run in parallel on a thread
//     pool, and failover is a post-hoc re-run on the first surviving
//     replica. Kept as the golden-pinned equivalence baseline: at
//     replication = 1 with no node deaths the unified kernel produces
//     bit-identical per-query outcomes and digests
//     (tests/cluster_equivalence_test.cpp).
//
// Atoms are assigned to nodes by contiguous Morton ranges (preserving
// spatial locality within a node); ranges may be replicated k ways (range
// owned by node n is also stored on nodes n+1 .. n+k-1 mod N, the classic
// chained declustering layout of the JHU turbulence cluster). With
// replication 1 a dead node's unfinished queries are *lost* (reported,
// never silently dropped) — exactly the trade-off a production deployment
// makes. Reported cluster throughput uses the slowest node's virtual
// makespan — the cluster is done when its last node is.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "util/typed_id.h"
#include "workload/job.h"

namespace jaws::core {

/// How TurbulenceCluster::run executes the node engines.
enum class ClusterMode {
    kUnified,  ///< One shared event kernel, route-time arrivals, replica reads.
    kLegacy,   ///< N isolated engines + post-hoc failover (equivalence baseline).
};

/// Cluster-wide configuration: one node template replicated `nodes` times.
struct ClusterConfig {
    EngineConfig node;       ///< Per-node stack configuration.
    std::size_t nodes = 4;   ///< Number of database nodes.
    /// Copies of each Morton range (1 = no redundancy). Range owned by node
    /// n is also readable on nodes n+1 .. n+replication-1 (mod nodes).
    std::size_t replication = 1;
    ClusterMode mode = ClusterMode::kUnified;

    /// Reject nonsensical cluster configurations (zero nodes, node counts
    /// beyond util::NodeIndex's 32-bit range, replication
    /// outside [1, nodes], node-down events naming nonexistent nodes, more
    /// than one node-down event for the same node, or a node-down at tick 0
    /// — a node that was never up) with a descriptive std::invalid_argument
    /// naming the offending field; also validates the node config.
    void validate() const;
};

/// Aggregated cluster results.
struct ClusterReport {
    std::vector<RunReport> per_node;      ///< One report per node (may be empty runs).
    /// Recovery runs executed on replicas after node deaths (one per
    /// failover, in node-death order). Legacy mode only: the unified kernel
    /// absorbs failover work into the survivors' per_node reports instead.
    std::vector<RunReport> recovery;
    util::SimTime makespan;               ///< Slowest node's virtual makespan
                                          ///< (including failover work).
    double total_throughput_qps = 0.0;    ///< Total query parts / makespan.
    double mean_response_ms = 0.0;        ///< Query-part weighted mean response.
    double cache_hit_rate = 0.0;          ///< Aggregate over all nodes.
    double mean_disk_utilization = 0.0;   ///< Makespan-weighted mean over runs.
    double mean_cpu_utilization = 0.0;    ///< Makespan-weighted mean over runs.

    /// Cluster-wide response-time tail, computed over the *pooled* per-query
    /// samples of every node and recovery run — exact percentiles, not an
    /// average of per-node percentiles (which would understate the tail).
    /// NaN when no query part completed anywhere (rendered "n/a").
    double p99_response_ms = 0.0;
    double p999_response_ms = 0.0;

    // --- routing accounting (unified kernel; zero on the legacy path) ---
    std::uint64_t routed_queries = 0;     ///< Query parts routed to a node at
                                          ///< their arrival event.
    std::uint64_t rerouted_arrivals = 0;  ///< Parts whose owner was already
                                          ///< dead at arrival, sent to a
                                          ///< surviving replica instead.
    std::uint64_t replica_reads = 0;      ///< Atom reads served by a replica
                                          ///< other than the reader's node.
    /// Merged cluster timeline (unified mode with timeline_window_s > 0):
    /// per-window completions summed over nodes, response completion-
    /// weighted, utilisations averaged over the nodes reporting the window.
    std::vector<TimelinePoint> timeline;

    // --- fault & recovery accounting ---
    std::size_t dead_nodes = 0;       ///< Nodes killed by node-down events.
    std::size_t failovers = 0;        ///< Deaths whose work a replica picked up.
    std::size_t requeued_queries = 0; ///< Query parts re-routed off a dead node.
    std::size_t lost_queries = 0;     ///< Parts lost for lack of a surviving replica.
    std::uint64_t degraded_queries = 0;  ///< Sum of per-node degraded completions.
    std::uint64_t read_retries = 0;      ///< Sum over nodes and recovery runs.
    std::uint64_t read_failures = 0;     ///< Sum over nodes and recovery runs.

    // --- hedging & deadline accounting (sums over nodes and recovery runs;
    // all zero when HedgeSpec/deadline budgets are off) ---
    std::uint64_t hedges_issued = 0;
    std::uint64_t hedges_won = 0;
    std::uint64_t hedges_lost = 0;
    std::uint64_t cancellations = 0;
    util::SimTime wasted_service;        ///< Rendered disk time of cancelled losers.
    std::uint64_t deadline_misses = 0;
    std::uint64_t retries_suppressed = 0;
};

/// Spatially partitioned multi-node deployment.
class TurbulenceCluster {
  public:
    explicit TurbulenceCluster(const ClusterConfig& config);

    /// Node owning the atom with Morton code `morton` under `atoms_per_step`
    /// atoms per time step split into `nodes` contiguous Morton ranges.
    /// `morton` is a spatial coordinate, not an identity — hence the raw
    /// integer; the result is a strong NodeIndex (callers must not do
    /// arithmetic on it). `nodes` must fit util::NodeIndex (validate()
    /// enforces this for cluster configs).
    static util::NodeIndex node_of(std::uint64_t morton,
                                   std::uint64_t atoms_per_step,
                                   std::size_t nodes);

    /// Project one job onto every node it touches: element n of the result
    /// holds the queries whose footprint atoms node n owns (queries keep
    /// their IDs, footprints filtered, jobs re-sequenced; element n is empty
    /// when the job does not touch node n). Shared by partition-time
    /// splitting (legacy) and route-time splitting (unified kernel).
    std::vector<workload::Job> project(const workload::Job& job) const;

    /// Project `workload` onto each node (queries keep their IDs; footprints
    /// are filtered to the node's atoms; queries that touch no atom of the
    /// node are dropped and the job re-sequenced). Exposed for tests.
    std::vector<workload::Workload> partition(const workload::Workload& workload) const;

    /// Execute `workload` on the configured mode's kernel and aggregate.
    ClusterReport run(const workload::Workload& workload) const;

  private:
    ClusterReport run_legacy(const workload::Workload& workload) const;
    ClusterReport run_unified(const workload::Workload& workload) const;

    ClusterConfig config_;
};

}  // namespace jaws::core
