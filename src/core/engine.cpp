#include "core/engine.h"

#include <cassert>
#include <stdexcept>

#include "cache/lru.h"
#include "cache/lru_k.h"
#include "cache/slru.h"
#include "cache/two_q.h"
#include "cache/urc.h"
#include "sched/jaws.h"
#include "sched/liferaft.h"
#include "sched/noshare.h"
#include "util/logging.h"

namespace jaws::core {

namespace {
/// Reject invalid configs before any member (notably the AtomStore, whose
/// layout math assumes a well-formed grid) is constructed from them.
const EngineConfig& validated(const EngineConfig& config) {
    config.validate();
    return config;
}
}  // namespace

Engine::Engine(const EngineConfig& config)
    : config_(validated(config)),
      store_(storage::AtomStoreSpec{config.grid, config.field, config.disk,
                                    config.materialize_data, config.faults}),
      db_(config.grid, config.compute) {
    config_.estimates.atoms_per_step = config_.grid.atoms_per_step();
    cache_ = std::make_unique<cache::BufferCache>(config.cache.capacity_atoms, make_policy());
    scheduler_ = make_scheduler();
    if (config_.prefetch.enabled)
        prefetcher_ = std::make_unique<sched::TrajectoryPrefetcher>(
            config_.prefetch, config_.grid.atoms_per_side());
}

std::unique_ptr<cache::ReplacementPolicy> Engine::make_policy() {
    switch (config_.cache.policy) {
        case CachePolicy::kLru:
            return std::make_unique<cache::LruPolicy>();
        case CachePolicy::kLruK:
            return std::make_unique<cache::LruKPolicy>(config_.cache.lru_k);
        case CachePolicy::kSlru:
            return std::make_unique<cache::SlruPolicy>(
                config_.cache.capacity_atoms, config_.cache.slru_protected_fraction);
        case CachePolicy::kUrc:
            return std::make_unique<cache::UrcPolicy>(oracle_);
        case CachePolicy::kTwoQ:
            return std::make_unique<cache::TwoQPolicy>(config_.cache.capacity_atoms,
                                                       config_.cache.twoq_in_fraction);
    }
    throw std::invalid_argument("unknown cache policy");
}

std::unique_ptr<sched::Scheduler> Engine::make_scheduler() {
    switch (config_.scheduler.kind) {
        case SchedulerKind::kNoShare:
            return std::make_unique<sched::NoShareScheduler>();
        case SchedulerKind::kLifeRaft: {
            auto s = std::make_unique<sched::LifeRaftScheduler>(
                config_.estimates, cache_.get(), config_.scheduler.liferaft_alpha);
            oracle_.set(&s->manager());
            return s;
        }
        case SchedulerKind::kJaws: {
            sched::JawsConfig jc = config_.scheduler.jaws;
            jc.alpha.run_length = config_.run_length;
            auto s = std::make_unique<sched::JawsScheduler>(config_.estimates, cache_.get(),
                                                            jc);
            oracle_.set(&s->manager());
            return s;
        }
    }
    throw std::invalid_argument("unknown scheduler kind");
}

void Engine::submit_job(const workload::Job& job) {
    scheduler_->on_job_submitted(job);
    job_remaining_[job.id] = job.queries.size();
    for (const auto& q : job.queries) {
        QueryRuntime rt;
        rt.query = &q;
        rt.job = &job;
        rt.outstanding = q.footprint.size();
        runtime_.emplace(q.id, rt);
    }
    if (job.queries.empty()) {
        job_remaining_.erase(job.id);
        return;
    }
    if (job.type == workload::JobType::kOrdered) {
        // Only the head is visible; successors appear as predecessors finish.
        visibility_.push(VisibilityEvent{job.arrival, job.queries.front().id});
    } else {
        for (const auto& q : job.queries)
            visibility_.push(VisibilityEvent{job.arrival + q.think_time, q.id});
    }
}

void Engine::make_visible(workload::QueryId id) {
    QueryRuntime& rt = runtime_.at(id);
    assert(!rt.visible);
    rt.visible = true;
    rt.visible_at = clock_.now();
    scheduler_->on_query_visible(*rt.query, clock_.now());
}

void Engine::timeline_tick(util::SimTime now, double response_ms) {
    if (config_.timeline_window_s <= 0.0) return;
    const auto window = util::SimTime::from_seconds(config_.timeline_window_s);
    while (now >= timeline_next_) {
        TimelinePoint point;
        point.window_end = timeline_next_;
        point.completions = window_completions_;
        point.mean_response_ms =
            window_completions_
                ? window_response_ms_sum_ / static_cast<double>(window_completions_)
                : 0.0;
        point.alpha = scheduler_->current_alpha();
        point.backlog_subqueries = scheduler_->pending_count();
        point.cache_hit_rate = cache_->stats().hit_rate();
        timeline_.push_back(point);
        window_completions_ = 0;
        window_response_ms_sum_ = 0.0;
        timeline_next_ += window;
    }
    if (response_ms >= 0.0) {
        ++window_completions_;
        window_response_ms_sum_ += response_ms;
    }
}

void Engine::complete_query(QueryRuntime& rt) {
    const util::SimTime now = clock_.now();
    timeline_tick(now, (now - rt.visible_at).millis());
    QueryOutcome outcome;
    outcome.query = rt.query->id;
    outcome.job = rt.query->job;
    outcome.visible = rt.visible_at;
    outcome.completed = now;
    outcome.failed_subqueries = rt.failed;
    if (rt.failed > 0) ++degraded_queries_;
    outcomes_.push_back(outcome);
    ++completed_;

    scheduler_->on_query_completed(rt.query->id, outcome.response(), now);
    if (config_.run_length > 0 && completed_ % config_.run_length == 0)
        cache_->run_boundary();

    // Ordered successor becomes visible after the user's think time.
    const workload::Job& job = *rt.job;
    if (job.type == workload::JobType::kOrdered &&
        rt.query->seq_in_job + 1 < job.queries.size()) {
        const workload::Query& next = job.queries[rt.query->seq_in_job + 1];
        visibility_.push(VisibilityEvent{now + next.think_time, next.id});
        // Trajectory prefetching (Sec. VII): learn the job's motion and queue
        // speculative reads for the atoms its next query is predicted to hit.
        if (prefetcher_ != nullptr) {
            prefetcher_->observe(job.id, rt.query->seq_in_job, rt.query->timestep,
                                 rt.query->footprint);
            for (const storage::AtomId& atom : prefetcher_->predict(job.id))
                prefetch_queue_.push_back(atom);
            // Stale predictions (whose target query already ran) are worse
            // than none: keep only the newest few batches' worth.
            const std::size_t cap = 8 * prefetcher_->config().max_atoms_per_batch;
            if (prefetch_queue_.size() > cap)
                prefetch_queue_.erase(prefetch_queue_.begin(),
                                      prefetch_queue_.end() -
                                          static_cast<std::ptrdiff_t>(cap));
        }
    } else if (prefetcher_ != nullptr && job.type == workload::JobType::kOrdered) {
        prefetcher_->forget(job.id);
    }

    auto it = job_remaining_.find(job.id);
    assert(it != job_remaining_.end());
    if (--it->second == 0) {
        const double span_ms = (now - job.arrival).millis();
        job_span_ms_sum_ += span_ms;
        job_spans_.push_back(span_ms);
        ++jobs_done_;
        job_remaining_.erase(it);
    }
}

Engine::ReadStatus Engine::ensure_resident(const storage::AtomId& atom) {
    if (prefetcher_ != nullptr) prefetcher_->on_demand_access(atom);
    if (cache_->lookup(atom)) return ReadStatus::kCached;
    double backoff_ms = config_.retry.backoff_base_ms;
    for (std::size_t attempt = 1;; ++attempt) {
        storage::ReadResult rr = store_.read(atom);
        clock_.advance(rr.io_cost);
        if (!rr.failed) {
            ++atom_reads_;
            const auto evicted = cache_->insert(atom, std::move(rr.data));
            scheduler_->on_residency_changed(atom);
            if (evicted) {
                scheduler_->on_residency_changed(*evicted);
                if (prefetcher_ != nullptr) prefetcher_->on_evicted(*evicted);
            }
            return ReadStatus::kLoaded;
        }
        if (rr.permanent || attempt >= config_.retry.max_attempts) break;
        // Transient fault: back off exponentially (bounded) before retrying.
        // The delay is charged to the virtual clock, so response times and
        // QoS deadline checks see the true degraded timeline.
        const auto backoff =
            util::SimTime::from_millis(std::min(backoff_ms, config_.retry.backoff_cap_ms));
        backoff_ms *= config_.retry.backoff_multiplier;
        clock_.advance(backoff);
        retry_backoff_time_ += backoff;
        ++read_retries_;
    }
    ++read_failures_;
    return ReadStatus::kFailed;
}

void Engine::fail_subqueries(const std::vector<sched::SubQuery>& subs) {
    for (const sched::SubQuery& sub : subs) {
        QueryRuntime& rt = runtime_.at(sub.query);
        ++rt.failed;
        ++failed_subqueries_;
        assert(rt.outstanding > 0);
        if (--rt.outstanding == 0) complete_query(rt);
    }
}

void Engine::run_prefetches(util::SimTime until) {
    // Speculative reads run only while the disk would otherwise sit idle
    // ("this can also help mask the cost of random reads" — Sec. VII): each
    // read must fit before the next demand event.
    if (prefetcher_ == nullptr || prefetch_queue_.empty()) return;
    const auto est = util::SimTime::from_millis(config_.estimates.t_b_ms);
    std::size_t issued = 0;
    while (!prefetch_queue_.empty() &&
           issued < prefetcher_->config().max_atoms_per_batch &&
           clock_.now() + est <= until) {
        const storage::AtomId atom = prefetch_queue_.back();
        prefetch_queue_.pop_back();
        if (cache_->contains(atom) || !store_.contains(atom)) continue;
        storage::ReadResult rr = store_.read(atom);
        clock_.advance(rr.io_cost);
        // Speculative reads are best-effort: a faulted attempt is simply
        // dropped (no retries — demand reads will recover if it matters).
        if (rr.failed) continue;
        ++atom_reads_;
        const auto evicted = cache_->insert(atom, std::move(rr.data));
        scheduler_->on_residency_changed(atom);
        if (evicted) {
            scheduler_->on_residency_changed(*evicted);
            prefetcher_->on_evicted(*evicted);
        }
        prefetcher_->on_prefetched(atom);
        ++issued;
    }
}

bool Engine::execute_one_batch() {
    const std::vector<sched::BatchItem> batch = scheduler_->next_batch(clock_.now());
    if (batch.empty()) return false;
    clock_.advance(util::SimTime::from_millis(config_.dispatch_overhead_ms));
    for (const sched::BatchItem& item : batch) {
        ++atoms_processed_;
        if (ensure_resident(item.atom) == ReadStatus::kFailed) {
            // The atom's data is unreachable: abandon this batch item's
            // sub-queries (their queries complete degraded). A permanently
            // bad atom also purges whatever later-visible queries queued
            // against it, so the scheduler never chases a dead atom forever.
            fail_subqueries(item.subqueries);
            if (store_.faults().permanently_bad(item.atom))
                fail_subqueries(scheduler_->purge_atom(item.atom));
            continue;
        }
        // Kernel supports: neighbour atoms the sub-queries draw interpolation
        // samples from. A cache-resident support costs nothing — and because
        // supports point at Morton-earlier neighbours, a Morton-ordered batch
        // has just read them (the locality of reference the two-level
        // framework exploits, paper Sec. V). A cold support costs a partial
        // ghost read that is *not* cached, so single-atom contention chasing
        // pays it again on later passes ("may access the same atom multiple
        // times on different passes").
        support_scratch_.clear();
        for (const sched::SubQuery& sub : item.subqueries)
            for (const std::uint64_t code : sub.supports)
                if (code != item.atom.morton) support_scratch_.push_back(code);
        std::sort(support_scratch_.begin(), support_scratch_.end());
        support_scratch_.erase(
            std::unique(support_scratch_.begin(), support_scratch_.end()),
            support_scratch_.end());
        for (const std::uint64_t code : support_scratch_) {
            const storage::AtomId support{item.atom.timestep, code};
            if (prefetcher_ != nullptr) prefetcher_->on_demand_access(support);
            if (cache_->lookup(support)) continue;  // ghost served from memory
            ++support_reads_;
            clock_.advance(util::SimTime::from_millis(config_.support_read_fraction *
                                                      config_.estimates.t_b_ms));
        }
        const auto payload = cache_->payload(item.atom);

        for (const sched::SubQuery& sub : item.subqueries) {
            QueryRuntime& rt = runtime_.at(sub.query);
            storage::SubQueryExec exec;
            exec.atom = item.atom;
            exec.position_count = sub.positions;
            exec.order = rt.query->order;
            exec.kind = rt.query->kind;
            if (payload != nullptr && !rt.query->positions.empty()) {
                // Examples run with real data: evaluate the positions of this
                // query that fall inside this atom.
                for (const auto& p : rt.query->positions)
                    if (config_.grid.atom_morton_of(p) == item.atom.morton)
                        exec.positions.push_back(p);
            }
            const storage::ExecOutcome out = db_.execute(exec, payload.get());
            clock_.advance(out.compute_cost);
            ++subqueries_done_;
            positions_done_ += sub.positions;

            assert(rt.outstanding > 0);
            if (--rt.outstanding == 0) complete_query(rt);
        }
    }
    return true;
}

RunReport Engine::run(const workload::Workload& workload) {
    if (ran_) throw std::logic_error("Engine::run: engine instances are single-shot");
    ran_ = true;

    const std::size_t total = workload.total_queries();
    outcomes_.reserve(total);
    std::size_t next_job = 0;
    const util::SimTime start =
        workload.jobs.empty() ? util::SimTime::zero() : workload.jobs.front().arrival;
    clock_.advance_to(start);
    if (config_.timeline_window_s > 0.0)
        timeline_next_ = start + util::SimTime::from_seconds(config_.timeline_window_s);

    while (completed_ < total) {
        // Node death (cluster failover): stop dead at the configured virtual
        // time; the cluster re-projects the unfinished work onto replicas.
        if (clock_.now() >= config_.halt_at) {
            halted_ = true;
            break;
        }
        // Admit everything due at the current virtual time.
        while (next_job < workload.jobs.size() &&
               workload.jobs[next_job].arrival <= clock_.now()) {
            submit_job(workload.jobs[next_job]);
            ++next_job;
        }
        while (!visibility_.empty() && visibility_.top().at <= clock_.now()) {
            const workload::QueryId id = visibility_.top().query;
            visibility_.pop();
            make_visible(id);
        }

        if (scheduler_->has_pending()) {
            execute_one_batch();
            continue;
        }

        // Idle: jump to the next event (never past a scheduled node death —
        // a dead node must not prefetch through its own halt).
        util::SimTime next{INT64_MAX};
        if (next_job < workload.jobs.size())
            next = std::min(next, workload.jobs[next_job].arrival);
        if (!visibility_.empty()) next = std::min(next, visibility_.top().at);
        next = std::min(next, config_.halt_at);
        if (next.micros != INT64_MAX) {
            // The disk is idle until the next arrival/visibility event: spend
            // the gap on speculative trajectory reads (Sec. VII).
            run_prefetches(next);
            idle_time_ += next - clock_.now();
            clock_.advance_to(next);
            continue;
        }

        // No pending work and no future events: only gated queries remain.
        if (scheduler_->unstick(clock_.now())) continue;
        JAWS_LOG_ERROR("engine", "stalled with %zu/%zu queries complete", completed_, total);
        throw std::runtime_error("Engine::run: scheduler stalled");
    }

    RunReport report;
    report.scheduler_name = scheduler_->name();
    report.cache_policy = cache_->policy_name();
    report.queries = completed_;
    report.jobs = workload.jobs.size();
    report.makespan = clock_.now() - start;
    const double seconds = std::max(1e-9, report.makespan.seconds());
    report.throughput_qps = static_cast<double>(completed_) / seconds;
    report.seconds_per_query =
        completed_ ? seconds / static_cast<double>(completed_) : 0.0;
    report.idle_time = idle_time_;
    const double busy_seconds = std::max(1e-9, seconds - idle_time_.seconds());
    report.busy_throughput_qps = static_cast<double>(completed_) / busy_seconds;
    fill_response_stats(outcomes_, report);
    report.mean_job_span_ms = jobs_done_ ? job_span_ms_sum_ / static_cast<double>(jobs_done_)
                                         : 0.0;
    report.cache = cache_->stats();
    report.cache_overhead_per_query_ms =
        static_cast<double>(report.cache.policy_overhead_ns) * 1e-6 /
        std::max<std::size_t>(1, completed_);
    report.disk = store_.disk_stats();
    report.atoms_processed = atoms_processed_;
    report.atom_reads = atom_reads_;
    report.support_reads = support_reads_;
    report.subqueries = subqueries_done_;
    report.positions = positions_done_;
    report.read_retries = read_retries_;
    report.read_failures = read_failures_;
    report.failed_subqueries = failed_subqueries_;
    report.degraded_queries = degraded_queries_;
    report.retry_backoff_time = retry_backoff_time_;
    report.faults = store_.fault_stats();
    report.halted = halted_;
    report.final_alpha = scheduler_->current_alpha();
    if (const sched::GatingStats* gs = scheduler_->gating_stats()) report.gating = *gs;
    if (const sched::QosStats* qs = scheduler_->qos_stats()) report.qos = *qs;
    if (prefetcher_ != nullptr) report.prefetch = prefetcher_->stats();
    report.job_span_ms = job_spans_;
    if (config_.timeline_window_s > 0.0) {
        // Flush the final partial window.
        if (window_completions_ > 0) {
            TimelinePoint point;
            point.window_end = clock_.now();
            point.completions = window_completions_;
            point.mean_response_ms =
                window_response_ms_sum_ / static_cast<double>(window_completions_);
            point.alpha = scheduler_->current_alpha();
            point.backlog_subqueries = scheduler_->pending_count();
            point.cache_hit_rate = cache_->stats().hit_rate();
            timeline_.push_back(point);
        }
        report.timeline = std::move(timeline_);
    }
    return report;
}

}  // namespace jaws::core
