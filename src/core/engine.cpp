#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "cache/lru.h"
#include "field/interpolation.h"
#include "cache/lru_k.h"
#include "cache/slru.h"
#include "cache/two_q.h"
#include "cache/urc.h"
#include "sched/jaws.h"
#include "sched/liferaft.h"
#include "sched/noshare.h"
#include "util/logging.h"
#include "util/wallclock.h"

namespace jaws::core {

namespace {
/// Reject invalid configs before any member (notably the AtomStore, whose
/// layout math assumes a well-formed grid) is constructed from them.
const EngineConfig& validated(const EngineConfig& config) {
    config.validate();
    return config;
}

/// Fold interpolated samples into an FNV-1a digest, one fixed-layout block of
/// double bit patterns per sample (member-by-member, so struct padding can
/// never leak into the digest).
std::uint64_t fold_samples(std::uint64_t h,
                           const std::vector<field::FlowSample>& samples) {
    for (const field::FlowSample& s : samples) {
        const double vals[4] = {s.velocity.x, s.velocity.y, s.velocity.z,
                                s.pressure};
        h = fnv1a64(h, vals, sizeof vals);
    }
    return h;
}
}  // namespace

Engine::Engine(const EngineConfig& config)
    : Engine(config, nullptr, util::NodeIndex{0}) {}

Engine::Engine(const EngineConfig& config, util::EventQueue& events,
               util::NodeIndex node_id)
    : Engine(config, &events, node_id) {}

Engine::Engine(const EngineConfig& config, util::EventQueue* shared_events,
               util::NodeIndex node_id)
    : config_(validated(config)),
      owned_events_(shared_events != nullptr ? nullptr
                                             : std::make_unique<util::EventQueue>()),
      events_(shared_events != nullptr ? *shared_events : *owned_events_),
      node_id_(node_id),
      store_(storage::AtomStoreSpec{config.grid, config.field, config.disk,
                                    config.io_depth, config.materialize_data,
                                    config.faults}),
      db_(config.grid, config.compute, config.eval.batch),
      disk_res_(events_, config.io_depth, kPriService, node_id.value()),
      cpu_res_(events_, config.compute_workers, kPriService, node_id.value()),
      read_ewma_(config.hedge.ewma_alpha) {
    // A privately owned queue takes the configured tie-break perturbation
    // (a shared queue is perturbed once by its owner, the cluster kernel).
    if (owned_events_ != nullptr)
        owned_events_->set_perturbation(config_.tie_perturbation);
    config_.estimates.atoms_per_step = config_.grid.atoms_per_step();
    cache_ = std::make_unique<cache::BufferCache>(config.cache.capacity_atoms, make_policy());
    if (config_.cache.wall_clock_overhead) cache_->set_tick_source(util::wall_clock_ns);
    scheduler_ = make_scheduler();
    if (config_.prefetch.enabled) {
        prefetcher_ = std::make_unique<sched::TrajectoryPrefetcher>(
            config_.prefetch, config_.grid.atoms_per_side());
        prefetch_read_.resize(config_.io_depth);
    }
    // Real-thread evaluation (EvalSpec): an external pool always wins;
    // otherwise a parallel materialised run gets an engine-owned pool sized
    // to the modeled CPU channels. Descriptor-only runs never spawn threads.
    if (config_.eval.pool != nullptr) {
        eval_pool_ = config_.eval.pool;
    } else if (config_.eval.parallel && config_.materialize_data) {
        owned_eval_pool_ = std::make_unique<util::ThreadPool>(
            config_.eval.threads != 0 ? config_.eval.threads
                                      : config_.compute_workers);
        eval_pool_ = owned_eval_pool_.get();
    }
    if (config_.eval.wall_clock_timing) eval_tick_ = util::wall_clock_ns;
    disk_res_.set_observer([this] { account_tick(); });
    cpu_res_.set_observer([this] { account_tick(); });
    // A disk channel going idle with no demand read waiting is the window for
    // speculative trajectory reads (Sec. VII as *background* I/O).
    disk_res_.set_idle_hook([this] { try_issue_prefetch(); });
}

std::unique_ptr<cache::ReplacementPolicy> Engine::make_policy() {
    switch (config_.cache.policy) {
        case CachePolicy::kLru:
            return std::make_unique<cache::LruPolicy>();
        case CachePolicy::kLruK:
            return std::make_unique<cache::LruKPolicy>(config_.cache.lru_k);
        case CachePolicy::kSlru:
            return std::make_unique<cache::SlruPolicy>(
                config_.cache.capacity_atoms, config_.cache.slru_protected_fraction);
        case CachePolicy::kUrc:
            return std::make_unique<cache::UrcPolicy>(oracle_);
        case CachePolicy::kTwoQ:
            return std::make_unique<cache::TwoQPolicy>(config_.cache.capacity_atoms,
                                                       config_.cache.twoq_in_fraction);
    }
    throw std::invalid_argument("unknown cache policy");
}

std::unique_ptr<sched::Scheduler> Engine::make_scheduler() {
    switch (config_.scheduler.kind) {
        case SchedulerKind::kNoShare:
            return std::make_unique<sched::NoShareScheduler>();
        case SchedulerKind::kLifeRaft: {
            auto s = std::make_unique<sched::LifeRaftScheduler>(
                config_.estimates, cache_.get(), config_.scheduler.liferaft_alpha);
            oracle_.set(&s->manager());
            return s;
        }
        case SchedulerKind::kJaws: {
            sched::JawsConfig jc = config_.scheduler.jaws;
            jc.alpha.run_length = config_.run_length;
            auto s = std::make_unique<sched::JawsScheduler>(config_.estimates, cache_.get(),
                                                            jc);
            oracle_.set(&s->manager());
            return s;
        }
    }
    throw std::invalid_argument("unknown scheduler kind");
}

// --------------------------------------------------------------------------
// Admission
// --------------------------------------------------------------------------

void Engine::push_visibility(util::SimTime at, workload::QueryId id) {
    visibility_.push(VisibilityEvent{at, id});
    // Future events need a kernel wake-up; already-due ones are drained by the
    // admission pass of the dispatch event that is (or will be) scheduled for
    // this instant.
    if (at > events_.now())
        events_.schedule(at, kPriVisibility, node_id_.value(), [this] {
            if (!halted_ && batch_ == nullptr) ensure_dispatch();
        });
}

void Engine::require_kernel_fit(const workload::Job& job) const {
    if (!config_.materialize_data) return;
    for (const workload::Query& q : job.queries)
        if (field::kernel_half_width(q.order) > config_.grid.ghost)
            throw std::invalid_argument(
                "Engine: interpolation order " +
                std::to_string(static_cast<int>(q.order)) + " (query " +
                std::to_string(q.id) + ") needs kernel half-width " +
                std::to_string(field::kernel_half_width(q.order)) +
                " <= grid.ghost (" + std::to_string(config_.grid.ghost) +
                ") when materialize_data is set");
}

void Engine::submit_job(const workload::Job& job) {
    scheduler_->on_job_submitted(job);
    job_remaining_[job.id] = job.queries.size();
    for (const auto& q : job.queries) {
        QueryRuntime rt;
        rt.query = &q;
        rt.job = &job;
        rt.outstanding = q.footprint.size();
        runtime_.emplace(q.id, rt);
    }
    if (job.queries.empty()) {
        job_remaining_.erase(job.id);
        return;
    }
    if (job.type == workload::JobType::kOrdered) {
        // Only the head is visible; successors appear as predecessors finish.
        push_visibility(job.arrival, job.queries.front().id);
    } else {
        for (const auto& q : job.queries)
            push_visibility(job.arrival + q.think_time, q.id);
    }
}

void Engine::make_visible(workload::QueryId id) {
    QueryRuntime& rt = runtime_.at(id);
    assert(!rt.visible);
    rt.visible = true;
    rt.visible_at = events_.now();
    scheduler_->on_query_visible(*rt.query, events_.now());
}

void Engine::admit_due() {
    // Arrivals first (their submission may push visibility events that are
    // themselves already due), then visibility events ordered by (at, id) —
    // the pre-kernel engine's exact admission order.
    for (const workload::Job* job : due_jobs_) submit_job(*job);
    due_jobs_.clear();
    while (!visibility_.empty() && visibility_.top().at <= events_.now()) {
        const workload::QueryId id = visibility_.top().query;
        visibility_.pop();
        make_visible(id);
    }
}

void Engine::ensure_dispatch() {
    if (dispatch_pending_ || halted_) return;
    dispatch_pending_ = true;
    events_.schedule(events_.now(), kPriDispatch, node_id_.value(), [this] {
        dispatch_pending_ = false;
        on_dispatch();
    });
}

void Engine::on_dispatch() {
    if (halted_ || batch_ != nullptr) return;
    admit_due();
    if (scheduler_->has_pending()) {
        std::vector<sched::BatchItem> items = scheduler_->next_batch(events_.now());
        if (!items.empty()) {
            start_batch(std::move(items));
            return;
        }
    }
    // Going idle until the next arrival/visibility wake-up: spend the gap on
    // speculative trajectory reads.
    try_issue_prefetch();
}

// --------------------------------------------------------------------------
// Batch pipeline
// --------------------------------------------------------------------------

void Engine::start_batch(std::vector<sched::BatchItem> items) {
    account_tick();
    batch_ = std::make_unique<ActiveBatch>();
    batch_->items.reserve(items.size());
    for (sched::BatchItem& item : items) {
        ItemRun run;
        run.item = std::move(item);
        batch_->items.push_back(std::move(run));
    }
    // One scheduler->database dispatch round trip per batch, then the
    // pipeline starts issuing items.
    events_.schedule(
        events_.now() + util::SimTime::from_millis(config_.dispatch_overhead_ms),
        kPriService, node_id_.value(), [this] { issue_more(); });
}

void Engine::issue_more() {
    // The pipeline window scales with the disks that can serve this node's
    // reads: a replica chain of depth d keeps d * io_depth items in flight
    // (each disk contributes its own channel parallelism). Without a router
    // — or at replication 1 — this is exactly io_depth.
    const std::size_t window =
        config_.io_depth *
        (router_ != nullptr ? router_->read_concurrency(node_id_) : 1);
    while (batch_ != nullptr && batch_->next_issue < batch_->items.size() &&
           batch_->in_flight < window) {
        const std::size_t idx = batch_->next_issue++;
        ++batch_->in_flight;
        issue_item(idx);
    }
}

void Engine::issue_item(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    ++atoms_processed_;
    if (prefetcher_ != nullptr) prefetcher_->on_demand_access(it.item.atom);
    if (cache_->lookup(it.item.atom)) {
        proceed_supports(idx);
        return;
    }
    it.attempt = 1;
    it.backoff_ms = config_.retry.backoff_base_ms;
    submit_demand_read(idx);
    arm_hedge_trigger(idx);
}

void Engine::submit_demand_read(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    // Replica-aware routing (unified cluster): any surviving member of the
    // atom's replica chain may serve the read; the router picks the one with
    // the shallowest modeled disk queue. Standalone engines serve locally —
    // the exact pre-router event sequence.
    it.read_route = router_ != nullptr
                        ? router_->route_read(node_id_, it.item.atom)
                        : self_route();
    if (it.read_route.node != node_id_) ++replica_reads_;
    util::SimResource::Job job;
    job.priority = 0;
    job.preemptible = false;
    job.on_start = [this, idx](std::size_t channel) {
        ItemRun& run = batch_->items[idx];
        run.read = run.read_route.store->read(run.item.atom, util::ChannelIndex{channel});
        return run.read.io_cost;
    };
    job.on_complete = [this, idx](std::size_t) { demand_read_done(idx); };
    job.on_abort = [this, idx](std::size_t, util::SimTime remaining) {
        // Cancelled because the hedge won: refund the unrendered tail and
        // count the rendered part as the price of hedging.
        ItemRun& run = batch_->items[idx];
        refund_read_tail(run.read_route, run.read, remaining);
        wasted_service_ += run.read.io_cost - remaining;
    };
    it.read_job = it.read_route.disk->submit(std::move(job));
}

void Engine::demand_read_done(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    it.read_job = 0;
    if (!it.read.failed) {
        if (config_.hedge.enabled) read_ewma_.update(it.read.io_cost.millis());
        cancel_hedge_machinery(idx);
        ++atom_reads_;
        insert_into_cache(it.item.atom, std::move(it.read.data));
        proceed_supports(idx);
        return;
    }
    if (!it.read.permanent && it.attempt < config_.retry.max_attempts) {
        // Deadline budgets are enforced at retry boundaries: owning queries
        // already over budget abandon their sub-queries here (completing
        // degraded) instead of riding the backoff queue further.
        if (config_.deadline_budget_ms > 0.0 && !drop_expired_subqueries(it)) {
            // Every owner gave up — nothing left to retry for. Not a read
            // failure: the atom may be fine, the budget just ran out.
            cancel_hedge_machinery(idx);
            item_finished(idx);
            return;
        }
        // Circuit breaker: past the engine-wide retry budget, transient
        // failures fail fast instead of piling onto the backoff queue.
        if (config_.retry.total_retry_budget > 0 &&
            read_retries_ >= config_.retry.total_retry_budget) {
            ++retries_suppressed_;
            ++read_failures_;
            cancel_hedge_machinery(idx);
            fail_subqueries(it.item.subqueries);
            if (it.read_route.store->faults().permanently_bad(it.item.atom))
                fail_subqueries(scheduler_->purge_atom(it.item.atom));
            item_finished(idx);
            return;
        }
        // Transient fault: back off exponentially (bounded) before retrying.
        // The channel is released during the backoff — other in-flight items
        // keep the disk busy — and the delay shows up in response times, so
        // QoS deadline checks see the true degraded timeline.
        const auto backoff = util::SimTime::from_millis(
            std::min(it.backoff_ms, config_.retry.backoff_cap_ms));
        it.backoff_ms *= config_.retry.backoff_multiplier;
        retry_backoff_time_ += backoff;
        ++read_retries_;
        ++it.attempt;
        it.retry_event = events_.schedule(
            events_.now() + backoff, kPriService, node_id_.value(), [this, idx] {
                batch_->items[idx].retry_event = 0;
                submit_demand_read(idx);
            });
        return;
    }
    // The atom's data is unreachable: abandon this batch item's sub-queries
    // (their queries complete degraded). A permanently bad atom also purges
    // whatever later-visible queries queued against it, so the scheduler
    // never chases a dead atom forever.
    ++read_failures_;
    cancel_hedge_machinery(idx);
    fail_subqueries(it.item.subqueries);
    if (it.read_route.store->faults().permanently_bad(it.item.atom))
        fail_subqueries(scheduler_->purge_atom(it.item.atom));
    item_finished(idx);
}

// --------------------------------------------------------------------------
// Hedged reads & deadline budgets
// --------------------------------------------------------------------------

util::SimTime Engine::hedge_trigger_delay() const {
    if (config_.hedge.trigger_ms > 0.0)
        return util::SimTime::from_millis(config_.hedge.trigger_ms);
    const double base =
        read_ewma_.primed() ? read_ewma_.value() : config_.estimates.t_b_ms;
    return util::SimTime::from_millis(config_.hedge.trigger_ewma_multiplier * base);
}

void Engine::arm_hedge_trigger(std::size_t idx) {
    // With hedging off nothing is scheduled here, so the kernel's event and
    // id sequence — and therefore every golden report — is untouched.
    if (!config_.hedge.enabled) return;
    batch_->items[idx].hedge_trigger = events_.schedule(
        events_.now() + hedge_trigger_delay(), kPriService, node_id_.value(), [this, idx] {
            batch_->items[idx].hedge_trigger = 0;
            maybe_issue_hedge(idx);
        });
}

void Engine::maybe_issue_hedge(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    // Only while the demand phase is still unresolved (primary read in
    // flight or a backoff retry pending).
    if (it.read_job == 0 && it.retry_event == 0) return;
    if (outstanding_hedges_ >= config_.hedge.max_outstanding) return;
    // The hedge is charged to every distinct owning query that still has
    // budget; at least one must be able to pay.
    std::vector<QueryRuntime*> payers;
    for (const sched::SubQuery& sub : it.item.subqueries) {
        QueryRuntime& rt = runtime_.at(sub.query);
        if (rt.hedges >= config_.hedge.budget_per_query) continue;
        if (std::find(payers.begin(), payers.end(), &rt) == payers.end())
            payers.push_back(&rt);
    }
    if (payers.empty()) return;
    for (QueryRuntime* rt : payers) ++rt->hedges;
    ++hedges_issued_;
    ++outstanding_hedges_;
    peak_hedges_ = std::max(peak_hedges_, outstanding_hedges_);
    // The hedge prefers a surviving replica *other* than the primary's node,
    // so the duplicate rides independent hardware; a standalone engine (or a
    // chain with no alternative) lands it on another channel of the same
    // disk, as in single-node hedging.
    it.hedge_route =
        router_ != nullptr
            ? router_->route_hedge(node_id_, it.item.atom, it.read_route.node)
            : self_route();
    if (it.hedge_route.node != node_id_) ++replica_reads_;
    util::SimResource::Job job;
    job.priority = 0;
    job.preemptible = false;
    job.on_start = [this, idx](std::size_t channel) {
        ItemRun& run = batch_->items[idx];
        run.hedge_read = run.hedge_route.store->read(run.item.atom, util::ChannelIndex{channel});
        return run.hedge_read.io_cost;
    };
    job.on_complete = [this, idx](std::size_t) { hedge_done(idx); };
    job.on_abort = [this, idx](std::size_t, util::SimTime remaining) {
        // Cancelled because the primary won: refund the unrendered tail and
        // count the rendered part as the price of hedging.
        ItemRun& run = batch_->items[idx];
        refund_read_tail(run.hedge_route, run.hedge_read, remaining);
        wasted_service_ += run.hedge_read.io_cost - remaining;
    };
    it.hedge_job = it.hedge_route.disk->submit(std::move(job));
}

void Engine::hedge_done(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    it.hedge_job = 0;
    --outstanding_hedges_;
    if (it.hedge_read.failed) {
        // The duplicate drew a fault of its own: drop it; the primary path
        // (in-service read or pending backoff) keeps running.
        ++hedges_lost_;
        return;
    }
    ++hedges_won_;
    read_ewma_.update(it.hedge_read.io_cost.millis());
    // First completion wins: cancel the losing primary. Both submissions are
    // non-preemptible FIFO peers, so the hedge can only have started after
    // the primary did — the primary is in service (its on_abort refunds the
    // unrendered tail) or waiting out a backoff. cancel() returning false
    // means the primary resolved at this exact instant and already settled.
    if (it.read_job != 0) {
        if (it.read_route.disk->cancel(it.read_job)) ++cancellations_;
        it.read_job = 0;
    }
    if (it.retry_event != 0) {
        if (events_.cancel(it.retry_event)) ++cancellations_;
        it.retry_event = 0;
    }
    ++atom_reads_;
    insert_into_cache(it.item.atom, std::move(it.hedge_read.data));
    proceed_supports(idx);
}

void Engine::cancel_hedge_machinery(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    if (it.hedge_trigger != 0) {
        events_.cancel(it.hedge_trigger);
        it.hedge_trigger = 0;
    }
    if (it.hedge_job != 0) {
        // A still-waiting hedge is silently removed (its read never started);
        // an in-service one runs its on_abort refund. Either way it lost.
        if (it.hedge_route.disk->cancel(it.hedge_job)) {
            --outstanding_hedges_;
            ++hedges_lost_;
            ++cancellations_;
        }
        it.hedge_job = 0;
    }
}

void Engine::refund_read_tail(const storage::ReadRoute& route,
                              const storage::ReadResult& read,
                              util::SimTime remaining) {
    // Injected stalls (spikes, stuck reads) render after the mechanical
    // service in the model, so the refund comes out of the fault-delay
    // ledger first and only the remainder out of true service time —
    // keeping the two disjoint after mixed cancels. The refund goes to the
    // disk that rendered the read — a replica's, when the route crossed
    // nodes.
    const util::SimTime fault_part = std::min(remaining, read.fault_delay);
    if (fault_part > util::SimTime::zero()) route.store->disk().refund_delay(fault_part);
    const util::SimTime service_part = remaining - fault_part;
    route.store->disk().cancel_tail(service_part);
}

bool Engine::drop_expired_subqueries(ItemRun& it) {
    const util::SimTime now = events_.now();
    std::vector<sched::SubQuery> expired;
    auto& subs = it.item.subqueries;
    for (auto s = subs.begin(); s != subs.end();) {
        QueryRuntime& rt = runtime_.at(s->query);
        if ((now - rt.visible_at).millis() > config_.deadline_budget_ms) {
            if (!rt.deadline_missed) {
                rt.deadline_missed = true;
                ++deadline_misses_;
            }
            expired.push_back(*s);
            s = subs.erase(s);
        } else {
            ++s;
        }
    }
    if (!expired.empty()) fail_subqueries(expired);
    return !subs.empty();
}

void Engine::proceed_supports(std::size_t idx) {
    // Kernel supports: neighbour atoms the sub-queries draw interpolation
    // samples from. A cache-resident support costs nothing — and because
    // supports point at Morton-earlier neighbours, a Morton-ordered batch
    // has just read them (the locality of reference the two-level framework
    // exploits, paper Sec. V). A cold support costs a partial ghost read that
    // is *not* cached, so single-atom contention chasing pays it again on
    // later passes ("may access the same atom multiple times on different
    // passes"). The cold reads of one item are charged as a single disk job.
    ItemRun& it = batch_->items[idx];
    support_scratch_.clear();
    for (const sched::SubQuery& sub : it.item.subqueries)
        for (const std::uint64_t code : sub.supports)
            if (code != it.item.atom.morton) support_scratch_.push_back(code);
    std::sort(support_scratch_.begin(), support_scratch_.end());
    support_scratch_.erase(
        std::unique(support_scratch_.begin(), support_scratch_.end()),
        support_scratch_.end());
    std::int64_t cold = 0;
    for (const std::uint64_t code : support_scratch_) {
        const storage::AtomId support{it.item.atom.timestep, code};
        if (prefetcher_ != nullptr) prefetcher_->on_demand_access(support);
        if (cache_->lookup(support)) continue;  // ghost served from memory
        ++support_reads_;
        ++cold;
    }
    if (cold == 0) {
        begin_compute(idx);
        return;
    }
    // Per-read cost converted to micros *before* multiplying, so the total
    // matches the pre-kernel engine's per-support clock advances exactly.
    const auto per_read = util::SimTime::from_millis(config_.support_read_fraction *
                                                     config_.estimates.t_b_ms);
    const util::SimTime duration = per_read.scaled_by(cold);
    util::SimResource::Job job;
    job.priority = 0;
    job.preemptible = false;
    job.on_start = [duration](std::size_t) { return duration; };
    job.on_complete = [this, idx](std::size_t) { begin_compute(idx); };
    disk_res_.submit(std::move(job));
}

void Engine::begin_compute(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    it.payload = cache_->payload(it.item.atom);
    it.next_sub = 0;
    if (it.item.subqueries.empty()) {
        item_finished(idx);
        return;
    }
    submit_compute(idx);
}

void Engine::submit_compute(std::size_t idx) {
    util::SimResource::Job job;
    job.priority = 0;
    job.preemptible = false;
    job.on_start = [this, idx](std::size_t) {
        ItemRun& it = batch_->items[idx];
        const sched::SubQuery& sub = it.item.subqueries[it.next_sub];
        const QueryRuntime& rt = runtime_.at(sub.query);
        storage::SubQueryExec exec;
        exec.atom = it.item.atom;
        exec.position_count = sub.positions;
        exec.order = rt.query->order;
        exec.kind = rt.query->kind;
        if (it.payload != nullptr && !rt.query->positions.empty()) {
            // Examples run with real data: evaluate the positions of this
            // query that fall inside this atom.
            for (const auto& p : rt.query->positions)
                if (config_.grid.atom_morton_of(p) == it.item.atom.morton)
                    exec.positions.push_back(p);
        }
        // The modeled T_m service is authoritative for virtual time whether
        // the real interpolation runs inline or on the pool.
        const util::SimTime cost = db_.modeled_cost(exec);
        if (eval_pool_ != nullptr && it.payload != nullptr &&
            !exec.positions.empty()) {
            // Dispatch the real work; compute_done() joins the future at the
            // modeled completion event. Each in-service CPU channel owns at
            // most one task, bounding in-flight work to compute_workers.
            ++eval_tasks_;
            it.eval_on_pool = true;
            it.pending_eval = eval_pool_->submit(
                [this, exec = std::move(exec), payload = it.payload]() {
                    const std::uint64_t t0 = eval_tick_ ? eval_tick_() : 0;
                    storage::ExecOutcome out = db_.execute(exec, payload.get());
                    if (eval_tick_)
                        eval_wall_ns_.fetch_add(eval_tick_() - t0,
                                                std::memory_order_relaxed);
                    return out;
                });
        } else {
            const std::uint64_t t0 = eval_tick_ ? eval_tick_() : 0;
            it.staged_eval = db_.execute(exec, it.payload.get());
            if (eval_tick_)
                eval_wall_ns_.fetch_add(eval_tick_() - t0,
                                        std::memory_order_relaxed);
        }
        return cost;
    };
    job.on_complete = [this, idx](std::size_t) { compute_done(idx); };
    cpu_res_.submit(std::move(job));
}

void Engine::compute_done(std::size_t idx) {
    ItemRun& it = batch_->items[idx];
    const sched::SubQuery& sub = it.item.subqueries[it.next_sub];
    ++subqueries_done_;
    positions_done_ += sub.positions;
    QueryRuntime& rt = runtime_.at(sub.query);
    // Deterministic reduction: the real result (pooled or inline) is folded
    // here, at the modeled completion event — so sample order and digests
    // depend only on the virtual trace, never on real-thread interleaving.
    storage::ExecOutcome out;
    if (it.eval_on_pool) {
        it.eval_on_pool = false;
        out = it.pending_eval.get();
    } else {
        out = std::move(it.staged_eval);
        it.staged_eval = storage::ExecOutcome{};
    }
    if (!out.samples.empty()) {
        rt.samples_evaluated += out.samples.size();
        rt.sample_digest = fold_samples(rt.sample_digest, out.samples);
        samples_evaluated_ += out.samples.size();
        sample_digest_ = fold_samples(sample_digest_, out.samples);
    }
    assert(rt.outstanding > 0);
    if (--rt.outstanding == 0) complete_query(rt);
    if (++it.next_sub < it.item.subqueries.size())
        submit_compute(idx);
    else
        item_finished(idx);
}

void Engine::item_finished(std::size_t idx) {
    (void)idx;
    --batch_->in_flight;
    ++batch_->finished;
    if (batch_->finished == batch_->items.size()) {
        end_batch();
        return;
    }
    issue_more();
}

void Engine::end_batch() {
    account_tick();
    batch_.reset();
    // Re-admit and re-dispatch at this instant — unless the node died
    // mid-batch, in which case the batch was allowed to finish but nothing
    // new starts (and the cluster kernel may now fail the leftovers over).
    if (!halted_)
        ensure_dispatch();
    else
        maybe_halt_drained();
}

// --------------------------------------------------------------------------
// Completion bookkeeping
// --------------------------------------------------------------------------

void Engine::insert_into_cache(const storage::AtomId& atom,
                               std::shared_ptr<const field::VoxelBlock> data) {
    const auto evicted = cache_->insert(atom, std::move(data));
    scheduler_->on_residency_changed(atom);
    if (evicted) {
        scheduler_->on_residency_changed(*evicted);
        if (prefetcher_ != nullptr) prefetcher_->on_evicted(*evicted);
    }
}

void Engine::fail_subqueries(const std::vector<sched::SubQuery>& subs) {
    for (const sched::SubQuery& sub : subs) {
        QueryRuntime& rt = runtime_.at(sub.query);
        ++rt.failed;
        ++failed_subqueries_;
        assert(rt.outstanding > 0);
        if (--rt.outstanding == 0) complete_query(rt);
    }
}

void Engine::complete_query(QueryRuntime& rt) {
    const util::SimTime now = events_.now();
    end_time_ = now;  // the shared kernel has no per-node loop to observe this
    timeline_tick(now, (now - rt.visible_at).millis());
    QueryOutcome outcome;
    outcome.query = rt.query->id;
    outcome.job = rt.query->job;
    outcome.visible = rt.visible_at;
    outcome.completed = now;
    outcome.failed_subqueries = rt.failed;
    outcome.samples_evaluated = rt.samples_evaluated;
    outcome.sample_digest = rt.sample_digest;
    outcome.hedged_reads = rt.hedges;
    outcome.deadline_missed = rt.deadline_missed;
    if (rt.failed > 0) ++degraded_queries_;
    outcomes_.push_back(outcome);
    ++completed_;

    scheduler_->on_query_completed(rt.query->id, outcome.response(), now);
    if (config_.run_length > 0 && completed_ % config_.run_length == 0)
        cache_->run_boundary();

    // Ordered successor becomes visible after the user's think time.
    const workload::Job& job = *rt.job;
    if (job.type == workload::JobType::kOrdered &&
        rt.query->seq_in_job + 1 < job.queries.size()) {
        const workload::Query& next = job.queries[rt.query->seq_in_job + 1];
        push_visibility(now + next.think_time, next.id);
        // Trajectory prefetching (Sec. VII): learn the job's motion and queue
        // speculative reads for the atoms its next query is predicted to hit.
        if (prefetcher_ != nullptr) {
            prefetcher_->observe(job.id, rt.query->seq_in_job, rt.query->timestep,
                                 rt.query->footprint);
            for (const storage::AtomId& atom : prefetcher_->predict(job.id))
                prefetch_queue_.push_back(atom);
            // Stale predictions (whose target query already ran) are worse
            // than none. Background issuance drains the queue far faster than
            // the old idle-gap prefetcher did, so keep only the newest
            // batch's worth: everything older would issue as cache-churning
            // speculation for queries that have already moved on.
            const std::size_t cap = prefetcher_->config().max_atoms_per_batch;
            if (prefetch_queue_.size() > cap)
                prefetch_queue_.erase(prefetch_queue_.begin(),
                                      prefetch_queue_.end() -
                                          static_cast<std::ptrdiff_t>(cap));
            // Fresh predictions may be issuable right now on an idle channel.
            try_issue_prefetch();
        }
    } else if (prefetcher_ != nullptr && job.type == workload::JobType::kOrdered) {
        prefetcher_->forget(job.id);
    }

    auto it = job_remaining_.find(job.id);
    assert(it != job_remaining_.end());
    if (--it->second == 0) {
        const double span_ms = (now - job.arrival).millis();
        job_span_ms_sum_ += span_ms;
        job_spans_.push_back(span_ms);
        ++jobs_done_;
        job_remaining_.erase(it);
    }
}

// --------------------------------------------------------------------------
// Background prefetch
// --------------------------------------------------------------------------

void Engine::try_issue_prefetch() {
    // Speculative reads are true background I/O: they run on any disk channel
    // that would otherwise sit idle ("this can also help mask the cost of
    // random reads" — Sec. VII) and a later demand read preempts them
    // mid-service, so they can never delay demand work.
    if (prefetcher_ == nullptr || halted_) return;
    while (!prefetch_queue_.empty() && disk_res_.has_free_channel() &&
           disk_res_.queued() == 0) {
        const storage::AtomId atom = prefetch_queue_.back();
        prefetch_queue_.pop_back();
        if (cache_->contains(atom) || !store_.contains(atom)) continue;
        util::SimResource::Job job;
        job.priority = 1;  // behind any demand read
        job.preemptible = true;
        job.on_start = [this, atom](std::size_t channel) {
            prefetch_read_[channel] = store_.read(atom, util::ChannelIndex{channel});
            return prefetch_read_[channel].io_cost;
        };
        job.on_complete = [this, atom](std::size_t channel) {
            storage::ReadResult rr = std::move(prefetch_read_[channel]);
            // Best-effort: a faulted attempt is simply dropped (no retries —
            // demand reads will recover if it matters).
            if (rr.failed) return;
            ++atom_reads_;
            insert_into_cache(atom, std::move(rr.data));
            prefetcher_->on_prefetched(atom);
        };
        job.on_abort = [this, atom](std::size_t channel, util::SimTime remaining) {
            // The read()'s full cost was charged when service started; give
            // back the tail the channel never actually rendered (split across
            // the service and fault-delay ledgers so they stay disjoint).
            refund_read_tail(self_route(), prefetch_read_[channel], remaining);
            ++prefetch_aborted_;
            prefetcher_->on_aborted(atom);
        };
        disk_res_.submit(std::move(job));
    }
}

// --------------------------------------------------------------------------
// Accounting
// --------------------------------------------------------------------------

void Engine::account_tick() { account_to(events_.now()); }

void Engine::account_to(util::SimTime now) {
    const util::SimTime dt = now - last_account_;
    if (dt <= util::SimTime::zero()) return;
    last_account_ = now;
    const bool disk_busy = disk_res_.busy_channels() > 0;
    const bool cpu_busy = cpu_res_.busy_channels() > 0;
    if (disk_busy) disk_busy_time_ += dt;
    if (cpu_busy) cpu_busy_time_ += dt;
    if (disk_busy && cpu_busy) overlap_time_ += dt;
    // "Idle" reproduces the pre-kernel engine's jumped-gap accounting: time
    // with no batch active and both resources quiet (dispatch overhead and
    // retry backoff inside a batch are busy time, not idle).
    if (!disk_busy && !cpu_busy && batch_ == nullptr) idle_time_ += dt;
}

void Engine::flush_timeline_window(util::SimTime window_end, double window_seconds) {
    TimelinePoint point;
    point.window_end = window_end;
    point.completions = window_completions_;
    point.mean_response_ms =
        window_completions_
            ? window_response_ms_sum_ / static_cast<double>(window_completions_)
            : 0.0;
    point.alpha = scheduler_->current_alpha();
    point.backlog_subqueries = scheduler_->pending_count();
    point.cache_hit_rate = cache_->stats().hit_rate();
    // Utilisation over the span since the previous flush (windows are flushed
    // lazily at completion times, so a long quiet stretch settles its whole
    // span on the first window flushed after it).
    const util::SimTime disk_ct = disk_res_.busy_channel_time();
    const util::SimTime cpu_ct = cpu_res_.busy_channel_time();
    if (window_seconds > 0.0) {
        point.disk_utilization = (disk_ct - tl_disk_channel_time_).seconds() /
                                 (window_seconds * static_cast<double>(config_.io_depth));
        point.cpu_utilization =
            (cpu_ct - tl_cpu_channel_time_).seconds() /
            (window_seconds * static_cast<double>(config_.compute_workers));
        point.overlap_fraction =
            (overlap_time_ - tl_overlap_time_).seconds() / window_seconds;
    }
    tl_disk_channel_time_ = disk_ct;
    tl_cpu_channel_time_ = cpu_ct;
    tl_overlap_time_ = overlap_time_;
    timeline_.push_back(point);
    window_completions_ = 0;
    window_response_ms_sum_ = 0.0;
}

void Engine::timeline_tick(util::SimTime now, double response_ms) {
    if (config_.timeline_window_s <= 0.0) return;
    const auto window = util::SimTime::from_seconds(config_.timeline_window_s);
    if (now >= timeline_next_) account_tick();  // bring integrals current
    while (now >= timeline_next_) {
        flush_timeline_window(timeline_next_, config_.timeline_window_s);
        timeline_next_ += window;
    }
    if (response_ms >= 0.0) {
        ++window_completions_;
        window_response_ms_sum_ += response_ms;
    }
}

// --------------------------------------------------------------------------
// Drive loop & shared-kernel lifecycle
// --------------------------------------------------------------------------

void Engine::start_clock(util::SimTime t) {
    clock_started_ = true;
    start_ = t;
    end_time_ = t;
    if (shared_mode_) {
        // Accounting was anchored at the cluster origin by begin_shared();
        // never rewind it (this node's disk may already have served replica
        // reads for other nodes before its own first arrival).
        if (t > last_account_) last_account_ = t;
    } else {
        last_account_ = t;
        if (config_.timeline_window_s > 0.0)
            timeline_next_ = t + util::SimTime::from_seconds(config_.timeline_window_s);
    }
}

void Engine::arm_halt() {
    // Node death (cluster failover): an active batch is allowed to complete,
    // but nothing further is admitted or dispatched.
    if (config_.halt_at != util::SimTime::max())
        events_.schedule(config_.halt_at, kPriHalt, node_id_.value(), [this] {
            halted_ = true;
            maybe_halt_drained();
        });
}

void Engine::maybe_halt_drained() {
    if (!halted_ || batch_ != nullptr || halt_drain_fired_) return;
    halt_drain_fired_ = true;
    // A node that finished everything before dying keeps its completion-time
    // makespan; only an interrupted node ends at the drain instant.
    if (clock_started_ && completed_ < expected_) end_time_ = events_.now();
    if (halt_drained_) halt_drained_();
}

bool Engine::try_unstick() {
    if (!scheduler_->unstick(events_.now())) return false;
    ensure_dispatch();
    return true;
}

void Engine::begin_shared(util::SimTime origin) {
    if (ran_)
        throw std::logic_error("Engine::begin_shared: engine instances are single-shot");
    if (owned_events_ != nullptr)
        throw std::logic_error("Engine::begin_shared: engine owns its event queue");
    ran_ = true;
    shared_mode_ = true;
    last_account_ = origin;
    // Timeline windows are pinned to the cluster origin (not this node's
    // first arrival) so every node's windows align for cluster-level merging.
    if (config_.timeline_window_s > 0.0)
        timeline_next_ = origin + util::SimTime::from_seconds(config_.timeline_window_s);
    arm_halt();
}

void Engine::inject_job(const workload::Job& job) {
    require_kernel_fit(job);
    if (!clock_started_) start_clock(events_.now());
    ++jobs_seen_;
    expected_ += job.queries.size();
    due_jobs_.push_back(&job);
    if (!halted_ && batch_ == nullptr) ensure_dispatch();
}

RunReport Engine::run(const workload::Workload& workload) {
    if (ran_) throw std::logic_error("Engine::run: engine instances are single-shot");
    ran_ = true;

    for (const workload::Job& job : workload.jobs) require_kernel_fit(job);
    expected_ = workload.total_queries();
    jobs_seen_ = workload.jobs.size();
    outcomes_.reserve(expected_);
    const util::SimTime start =
        workload.jobs.empty() ? util::SimTime::zero() : workload.jobs.front().arrival;
    events_.reset_to(start);
    start_clock(start);

    for (const workload::Job& job : workload.jobs)
        events_.schedule(job.arrival, kPriArrival, node_id_.value(), [this, &job] {
            due_jobs_.push_back(&job);
            if (!halted_ && batch_ == nullptr) ensure_dispatch();
        });
    arm_halt();

    while (completed_ < expected_) {
        if (halted_ && batch_ == nullptr) break;
        if (events_.run_one()) continue;
        // Queue drained with queries incomplete: only gated queries remain.
        if (try_unstick()) continue;
        JAWS_LOG_ERROR("engine", "stalled with %zu/%zu queries complete", completed_,
                       expected_);
        throw std::runtime_error("Engine::run: scheduler stalled");
    }
    end_time_ = events_.now();
    return finish();
}

RunReport Engine::finish() {
    if (!clock_started_) return RunReport{};
    account_to(end_time_);  // settle integrals up to this node's final instant

    RunReport report;
    report.scheduler_name = scheduler_->name();
    report.cache_policy = cache_->policy_name();
    report.queries = completed_;
    report.jobs = jobs_seen_;
    report.makespan = end_time_ - start_;
    const double seconds = std::max(1e-9, report.makespan.seconds());
    // On a shared kernel this node's disk may keep serving other nodes'
    // replica reads after its own last completion; utilisation and idle are
    // measured over the span accounting actually covered (identical to the
    // makespan on a private queue).
    const double span_seconds =
        std::max(seconds, (last_account_ - start_).seconds());
    report.throughput_qps = static_cast<double>(completed_) / seconds;
    report.seconds_per_query =
        completed_ ? seconds / static_cast<double>(completed_) : 0.0;
    report.idle_time = idle_time_;
    const double busy_seconds = std::max(1e-9, span_seconds - idle_time_.seconds());
    report.busy_throughput_qps = static_cast<double>(completed_) / busy_seconds;
    fill_response_stats(outcomes_, report);
    report.mean_job_span_ms = jobs_done_ ? job_span_ms_sum_ / static_cast<double>(jobs_done_)
                                         : 0.0;
    report.cache = cache_->stats();
    report.cache_overhead_per_query_ms =
        static_cast<double>(report.cache.policy_overhead_ns) * 1e-6 /
        std::max<std::size_t>(1, completed_);
    report.disk = store_.disk_stats();
    report.disk_busy_time = disk_busy_time_;
    report.cpu_busy_time = cpu_busy_time_;
    report.overlap_time = overlap_time_;
    report.io_depth = config_.io_depth;
    report.compute_workers = config_.compute_workers;
    report.peak_cpu_busy = cpu_res_.peak_busy_channels();
    report.peak_disk_busy = disk_res_.peak_busy_channels();
    report.eval_threads = eval_pool_ != nullptr ? eval_pool_->size() : 0;
    report.eval_tasks = eval_tasks_;
    report.samples_evaluated = samples_evaluated_;
    report.sample_digest = sample_digest_;
    report.eval_wall_ns = eval_wall_ns_.load(std::memory_order_relaxed);
    report.disk_utilization =
        disk_res_.busy_channel_time().seconds() /
        (span_seconds * static_cast<double>(config_.io_depth));
    report.cpu_utilization =
        cpu_res_.busy_channel_time().seconds() /
        (span_seconds * static_cast<double>(config_.compute_workers));
    report.overlap_fraction = overlap_time_.seconds() / span_seconds;
    report.atoms_processed = atoms_processed_;
    report.atom_reads = atom_reads_;
    report.replica_reads = replica_reads_;
    report.support_reads = support_reads_;
    report.subqueries = subqueries_done_;
    report.positions = positions_done_;
    report.read_retries = read_retries_;
    report.read_failures = read_failures_;
    report.failed_subqueries = failed_subqueries_;
    report.degraded_queries = degraded_queries_;
    report.retry_backoff_time = retry_backoff_time_;
    report.faults = store_.fault_stats();
    report.hedges_issued = hedges_issued_;
    report.hedges_won = hedges_won_;
    report.hedges_lost = hedges_lost_;
    report.cancellations = cancellations_;
    report.wasted_service = wasted_service_;
    report.peak_hedges_outstanding = peak_hedges_;
    report.deadline_misses = deadline_misses_;
    report.retries_suppressed = retries_suppressed_;
    // Halted means the run stopped short; a final batch that happened to
    // cross halt_at while finishing the workload is a completed run.
    report.halted = halted_ && completed_ < expected_;
    report.final_alpha = scheduler_->current_alpha();
    if (const sched::GatingStats* gs = scheduler_->gating_stats()) report.gating = *gs;
    if (const sched::QosStats* qs = scheduler_->qos_stats()) report.qos = *qs;
    if (prefetcher_ != nullptr) report.prefetch = prefetcher_->stats();
    report.prefetch_aborted = prefetch_aborted_;
    report.job_span_ms = job_spans_;
    if (config_.timeline_window_s > 0.0) {
        // Flush the final partial window.
        const util::SimTime window =
            util::SimTime::from_seconds(config_.timeline_window_s);
        const util::SimTime last_boundary = timeline_next_ - window;
        if (window_completions_ > 0)
            flush_timeline_window(end_time_, (end_time_ - last_boundary).seconds());
        report.timeline = std::move(timeline_);
    }
    return report;
}

}  // namespace jaws::core
