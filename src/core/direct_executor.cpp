#include "core/direct_executor.h"

#include <cassert>
#include <cmath>
#include <map>

#include "cache/lru.h"
#include "util/wallclock.h"

namespace jaws::core {

DirectExecutor::DirectExecutor(const EngineConfig& config)
    : store_(storage::AtomStoreSpec{config.grid, config.field, config.disk,
                                    /*io_channels=*/1,
                                    /*materialize_data=*/true, config.faults}),
      cache_(config.cache.capacity_atoms, std::make_unique<cache::LruPolicy>()),
      db_(config.grid, config.compute, config.eval.batch) {
    if (config.cache.wall_clock_overhead) cache_.set_tick_source(util::wall_clock_ns);
    const std::size_t eval_threads =
        config.eval.threads != 0 ? config.eval.threads : config.compute_workers;
    if (config.eval.pool != nullptr) {
        eval_pool_ = config.eval.pool;
    } else if (config.eval.parallel && eval_threads > 1) {
        owned_pool_ = std::make_unique<util::ThreadPool>(eval_threads);
        eval_pool_ = owned_pool_.get();
    }
}

DirectResult DirectExecutor::evaluate(std::uint32_t timestep,
                                      const std::vector<field::Vec3>& positions,
                                      field::InterpOrder order) {
    DirectResult result;
    result.samples.resize(positions.size());

    // Group positions by atom (Morton-sorted map) so each atom is read once
    // and positions are evaluated in Morton order, as the production system
    // does (paper Sec. III-A).
    std::map<std::uint64_t, std::vector<std::size_t>> by_atom;
    for (std::size_t i = 0; i < positions.size(); ++i)
        by_atom[store_.grid().atom_morton_of(positions[i])].push_back(i);

    // Phase 1 — serial I/O: read and cache each atom (Morton-ordered map
    // walk) and build its sub-query. All cost accounting happens here, in
    // deterministic order, before any parallel work starts.
    struct AtomTask {
        storage::SubQueryExec exec;
        std::shared_ptr<const field::VoxelBlock> payload;
        const std::vector<std::size_t>* indices = nullptr;
    };
    std::vector<AtomTask> tasks;
    tasks.reserve(by_atom.size());
    for (const auto& [morton, indices] : by_atom) {
        const storage::AtomId atom{timestep, morton};
        if (cache_.lookup(atom)) {
            ++result.cache_hits;
        } else {
            ++result.cache_misses;
            storage::ReadResult rr = store_.read(atom);
            result.virtual_cost += rr.io_cost;
            cache_.insert(atom, std::move(rr.data));
        }
        AtomTask task;
        task.exec.atom = atom;
        task.exec.order = order;
        task.exec.kind = storage::ComputeKind::kVelocity;
        task.exec.positions.reserve(indices.size());
        for (const std::size_t i : indices) task.exec.positions.push_back(positions[i]);
        result.virtual_cost += db_.modeled_cost(task.exec);
        task.payload = cache_.payload(atom);
        task.indices = &indices;
        tasks.push_back(std::move(task));
    }

    // Phase 2 — evaluation, pooled when configured. Each atom's samples land
    // in disjoint output slots and futures are joined in Morton order, so the
    // result is bit-identical to the inline loop for any worker count.
    if (eval_pool_ != nullptr) {
        std::vector<std::future<storage::ExecOutcome>> pending;
        pending.reserve(tasks.size());
        for (const AtomTask& task : tasks)
            pending.push_back(eval_pool_->submit([this, &task] {
                return db_.execute(task.exec, task.payload.get());
            }));
        for (std::size_t k = 0; k < tasks.size(); ++k) {
            const storage::ExecOutcome out = pending[k].get();
            const std::vector<std::size_t>& indices = *tasks[k].indices;
            for (std::size_t j = 0; j < indices.size(); ++j)
                result.samples[indices[j]] = out.samples[j];
        }
    } else {
        for (const AtomTask& task : tasks) {
            const storage::ExecOutcome out = db_.execute(task.exec, task.payload.get());
            const std::vector<std::size_t>& indices = *task.indices;
            for (std::size_t j = 0; j < indices.size(); ++j)
                result.samples[indices[j]] = out.samples[j];
        }
    }
    return result;
}

VolumeStats DirectExecutor::evaluate_box(std::uint32_t timestep, const field::Vec3& lo,
                                         const field::Vec3& hi,
                                         std::uint32_t samples_per_axis,
                                         field::InterpOrder order) {
    assert(samples_per_axis >= 1);
    assert(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z);
    // Regular sampling lattice over the box (cell-centred so a 1-sample axis
    // lands in the middle of the box rather than on its face).
    std::vector<field::Vec3> lattice;
    lattice.reserve(static_cast<std::size_t>(samples_per_axis) * samples_per_axis *
                    samples_per_axis);
    const auto coord = [&](double a, double b, std::uint32_t i) {
        return field::wrap01(a + (b - a) * (static_cast<double>(i) + 0.5) /
                                     static_cast<double>(samples_per_axis));
    };
    for (std::uint32_t iz = 0; iz < samples_per_axis; ++iz)
        for (std::uint32_t iy = 0; iy < samples_per_axis; ++iy)
            for (std::uint32_t ix = 0; ix < samples_per_axis; ++ix)
                lattice.push_back(field::Vec3{coord(lo.x, hi.x, ix), coord(lo.y, hi.y, iy),
                                              coord(lo.z, hi.z, iz)});

    const DirectResult result = evaluate(timestep, lattice, order);

    VolumeStats stats;
    stats.samples = result.samples.size();
    stats.virtual_cost = result.virtual_cost;
    stats.atoms_touched = result.cache_hits + result.cache_misses;
    double sum_p = 0.0, sum_p2 = 0.0, sum_speed2 = 0.0;
    for (const auto& s : result.samples) {
        stats.mean_velocity = stats.mean_velocity + s.velocity;
        sum_speed2 += s.velocity.norm2();
        sum_p += s.pressure;
        sum_p2 += s.pressure * s.pressure;
    }
    const auto n = static_cast<double>(stats.samples);
    stats.mean_velocity = (1.0 / n) * stats.mean_velocity;
    stats.rms_velocity = std::sqrt(sum_speed2 / n);
    stats.mean_pressure = sum_p / n;
    stats.pressure_variance =
        std::max(0.0, sum_p2 / n - stats.mean_pressure * stats.mean_pressure);
    stats.kinetic_energy = 0.5 * sum_speed2 / n;
    return stats;
}

}  // namespace jaws::core
